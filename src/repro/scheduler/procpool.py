"""Process-parallel generation executor with hard-kill timeouts.

:class:`ProcessWorkerPool` is the drop-in sibling of
:class:`~repro.scheduler.pool.FifoWorkerPool` behind the same
:class:`~repro.scheduler.pool.WorkerPool` protocol, backed by
``spawn``-context worker *processes* instead of threads.  The thread
pool only overlaps the GIL-releasing BLAS kernels; worker processes run
the whole Python training loop concurrently, which is what the paper's
multi-GPU resource manager assumes.

Division of labour (the key to bit-identical results across backends):

* **Workers** rebuild the evaluation chain once from a picklable
  :class:`EvalSpec` — dataset attached zero-copy through
  :mod:`repro.xfel.shm`, RNG streams re-derived from the run's root
  seed — and then run exactly *one* evaluation attempt per dispatched
  :class:`EvalTask`, streaming back an :class:`EvalResult` with the
  measurements and the per-epoch trace.
* **The parent** owns every side effect: it replays each trace through
  the real observers (lineage tracker, history store), runs the
  :class:`~repro.scheduler.faults.FaultPolicy` loop (classify → retry
  with backoff → quarantine) with the same routing rules as
  :class:`~repro.scheduler.faults.FaultTolerantEvaluator`, and keeps
  the eval-cache leader/follower story deterministic by priming the
  cache through the ``on_result`` hook.

Because attempts run in killable processes, a policy timeout is a *hard
kill*: the worker is terminated and respawned, so — unlike the
thread/serial backends, whose abandoned shadow threads keep computing —
a hung evaluation is truly reclaimed (``FaultEvent.timeout_leaked`` is
always ``False`` here; see DESIGN §8).  Failure settling matches the
thread path exactly: every job in the generation settles before any
error propagates, one error re-raises as itself, several raise an
``ExceptionGroup``.  Submission order is FIFO: job *i* is dispatched no
later than job *i+1*, and a retry goes to the *front* of the queue,
mirroring the serial path's finish-this-candidate-first behaviour.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection

from repro.core.engine import EngineConfig, PredictionEngine
from repro.nas.evaluation import TrainingEvaluator
from repro.nas.population import Individual
from repro.scheduler.faults import (
    EvaluationTimeout,
    FaultEvent,
    FaultInjectingEvaluator,
    FaultInjectionConfig,
    FaultPolicy,
    FaultTolerantEvaluator,
)
from repro.scheduler.pool import JobTiming, PoolReport
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.utils.timing import Stopwatch
from repro.xfel.intensity import BeamIntensity
from repro.xfel.shm import SharedArena, SharedDatasetSpec, attach_dataset

__all__ = ["EvalSpec", "EvalTask", "EvalResult", "ProcessWorkerPool"]

_LOG = get_logger("scheduler.procpool")


@dataclass(frozen=True)
class EvalSpec:
    """Picklable recipe a spawned worker uses to rebuild its evaluator chain.

    Carries configuration only — the dataset payload travels through
    shared memory (:class:`~repro.xfel.shm.SharedDatasetSpec`), and RNG
    state is never shipped: workers re-derive the exact generators the
    serial path would use from ``seed`` and the genome/model identity,
    which is what makes process evaluation bit-identical to serial.

    ``factory``, when set, overrides everything else: it must be a
    picklable zero-argument callable (a module-level function) returning
    an object with ``evaluate(individual)``; the test suite uses it to
    run delay/hang evaluators under the real dispatch machinery.
    """

    mode: str = "surrogate"
    seed: int = 0
    max_epochs: int = 25
    engine: EngineConfig | None = None
    intensity_label: str = "medium"
    dataset: SharedDatasetSpec | None = None
    dataset_key: str | None = None
    sanitize: bool = False
    sanitize_writes: bool = False
    rng_keying: str = "genome"
    dtype: str | None = None
    batch_size: int = 16
    learning_rate: float = 1e-3
    injection: FaultInjectionConfig | None = None
    # buffer-arena kernel fast path (repro.nn.arena) — a flag only: each
    # worker builds its own per-network BufferArena, nothing is pickled
    arena: bool = False
    factory: object = None


@dataclass(frozen=True)
class EvalTask:
    """One evaluation attempt dispatched to a worker process.

    ``budget`` ships the surrogate allocator's (possibly reduced) epoch
    budget; the allocator itself — predictor state included — never
    leaves the parent process.
    """

    model_id: int
    generation: int
    attempt: int
    genome: object
    budget: int | None = None


@dataclass(frozen=True)
class EvalResult:
    """What a worker sends back for one attempt.

    ``trace`` holds ``(epoch, fitness, prediction, epoch_stats)`` tuples
    — everything the parent needs to replay the per-epoch observers
    (history store, lineage tracker) exactly as the serial path fired
    them, including the trainer's :class:`~repro.nn.trainer.EpochStats`
    (``None`` in surrogate mode, as in the serial context).  A failed
    attempt carries the epochs measured *before* the fault plus the
    pickled exception in ``error``.
    """

    model_id: int
    attempt: int
    fitness: float | None = None
    flops: int | None = None
    result: object = None
    epoch_seconds: tuple = ()
    trace: tuple = ()
    error: bytes | None = None
    on_fault_fired: bool = False
    arena_enabled: bool = False
    arena_peak_bytes: int = 0

    def exception(self) -> Exception:
        """Decode the transported failure (only valid when ``error`` is set)."""
        return pickle.loads(self.error)


def _encode_error(exc: BaseException) -> bytes:
    """Pickle an exception, degrading to a summary when it won't survive."""
    try:
        payload = pickle.dumps(exc)
        pickle.loads(payload)  # round-trip check: __reduce__ bugs surface here
        return payload
    except Exception:  # a4nn: noqa(NUM001) -- fallback keeps the fault routable; the original message is preserved
        return pickle.dumps(RuntimeError(f"{type(exc).__name__}: {exc}"))


class _WorkerRuntime:
    """Worker-process side: the evaluator chain plus trace capture."""

    def __init__(self, spec: EvalSpec) -> None:
        self.trace: list = []
        self.fault_fired = False
        self._shm_handles: list = []
        if spec.factory is not None:
            self.evaluator = spec.factory()
            return
        # Imported lazily: repro.nas.surrogate itself imports
        # repro.scheduler.costmodel, so a module-level import here would
        # close the nas -> scheduler -> procpool -> nas cycle and fail
        # whenever repro.nas initializes first.
        from repro.nas.surrogate import SurrogateEvaluator
        engine = PredictionEngine(spec.engine) if spec.engine is not None else None
        stream = RngStream(spec.seed)
        observers = [self._observe]
        if spec.mode == "real":
            dataset, self._shm_handles = attach_dataset(spec.dataset)
            evaluator = TrainingEvaluator(
                dataset,
                engine,
                max_epochs=spec.max_epochs,
                batch_size=spec.batch_size,
                learning_rate=spec.learning_rate,
                rng_stream=stream.child("eval"),
                observers=observers,
                sanitize=spec.sanitize,
                sanitize_writes=spec.sanitize_writes,
                on_fault=self._on_fault,
                rng_keying=spec.rng_keying,
                dtype=spec.dtype,
                dataset_key=spec.dataset_key,
                arena=spec.arena,
            )
        else:
            evaluator = SurrogateEvaluator(
                BeamIntensity.from_label(spec.intensity_label),
                engine,
                max_epochs=spec.max_epochs,
                rng_stream=stream.child("eval"),
                observers=observers,
                rng_keying=spec.rng_keying,
            )
        if spec.injection is not None and spec.injection.rate > 0:
            evaluator = FaultInjectingEvaluator(
                evaluator, spec.injection, rng_stream=stream.child("inject")
            )
        self.evaluator = evaluator

    def _observe(self, individual, epoch, fitness, prediction, context) -> None:
        self.trace.append(
            (epoch, float(fitness), prediction, context.get("epoch_stats"))
        )

    def _on_fault(self, individual, fault) -> None:
        # remember that the base evaluator reported this fault so the
        # parent can fire the lineage tracker's on_fault exactly once
        self.fault_fired = True

    def run(self, task: EvalTask) -> EvalResult:
        self.trace = []
        self.fault_fired = False
        individual = Individual(
            genome=task.genome,
            model_id=task.model_id,
            generation=task.generation,
            eval_attempt=task.attempt,
            budget_assigned=task.budget,
        )
        try:
            self.evaluator.evaluate(individual)
        except Exception as exc:  # a4nn: noqa(NUM001) -- transported to the parent, which classifies and routes it
            return EvalResult(
                model_id=task.model_id,
                attempt=task.attempt,
                trace=tuple(self.trace),
                error=_encode_error(exc),
                on_fault_fired=self.fault_fired,
            )
        return EvalResult(
            model_id=task.model_id,
            attempt=task.attempt,
            fitness=float(individual.fitness),
            flops=int(individual.flops),
            result=individual.result,
            epoch_seconds=tuple(individual.epoch_seconds),
            trace=tuple(self.trace),
            arena_enabled=bool(individual.arena_enabled),
            arena_peak_bytes=int(individual.arena_peak_bytes),
        )


def _worker_main(conn, spec: EvalSpec) -> None:
    """Worker-process entry: handshake, then serve tasks until EOF/sentinel."""
    try:
        runtime = _WorkerRuntime(spec)
    except BaseException as exc:  # a4nn: noqa(NUM001) -- reported to the parent through the init handshake
        conn.send(("init_error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    conn.send(("ready", None))
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        conn.send(runtime.run(task))
    conn.close()


class _Job:
    """Parent-side state of one individual's evaluation across attempts."""

    __slots__ = ("individual", "order", "attempt", "ready_at", "first_start",
                 "attempt_start", "deadline", "trace")

    def __init__(self, individual: Individual, order: int) -> None:
        self.individual = individual
        self.order = order
        self.attempt = int(getattr(individual, "eval_attempt", 0))
        self.ready_at = 0.0        # generation-clock time the next attempt may start
        self.first_start = None    # generation-clock time of the first dispatch
        self.attempt_start = 0.0   # generation-clock time of the current dispatch
        self.deadline = None       # monotonic hard-kill deadline of the attempt
        self.trace = ()            # final attempt's epoch trace (for on_result)


class _ProcStreamState:
    """Persistent scheduling state of one open streaming run.

    The streaming seam drives the same ``_dispatch`` /
    ``_wait_and_settle`` primitives as the batch path, but keeps their
    state alive across ``submit``/``settled`` calls so the whole
    steady-state run is one scheduling episode with one
    :class:`~repro.scheduler.pool.PoolReport`.
    """

    def __init__(self, n_workers: int) -> None:
        self.clock = Stopwatch().start()
        self.queue: deque = deque()
        self.errors: dict[int, Exception] = {}
        self.timings: dict[int, JobTiming] = {}
        self.busy = [0.0] * n_workers
        self.settled_jobs: deque = deque()
        self.order = 0
        self.n_settled = 0


class _Worker:
    """Parent-side handle to one spawned worker process."""

    def __init__(self, ctx, spec: EvalSpec, index: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, spec),
            name=f"a4nn-eval-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.index = index
        self.job: _Job | None = None

    def await_ready(self, timeout: float) -> None:
        """Block until the worker finishes building its evaluator chain."""
        if not self.conn.poll(timeout):
            raise RuntimeError(
                f"worker {self.index} did not come up within {timeout:.0f}s"
            )
        tag, payload = self.conn.recv()
        if tag != "ready":
            raise RuntimeError(f"worker {self.index} failed to initialize: {payload}")


class ProcessWorkerPool:
    """FIFO generation executor over ``n_workers`` spawned worker processes.

    Parameters
    ----------
    spec:
        The :class:`EvalSpec` every worker rebuilds its evaluator from.
    n_workers:
        Concurrent evaluation processes (the paper's GPU count).
    policy:
        Optional :class:`~repro.scheduler.faults.FaultPolicy` applied
        *in the parent*: crash/NaN classification, bounded retries with
        backoff, quarantine — same routing as
        :class:`~repro.scheduler.faults.FaultTolerantEvaluator`, except
        that timeouts terminate-and-respawn the worker (hard kill).
    on_fault_event:
        Callback ``(individual, event_dict)`` per fault decision
        (lineage hook, as on the thread pool's wrapper).
    observers:
        Per-epoch observers the parent replays each result's trace
        through (pass the base evaluator's *live* ``observers`` list).
    on_fault:
        Callback ``(individual, fault)`` fired when the worker's base
        evaluator reported a sanitizer fault before raising (mirrors
        ``TrainingEvaluator.on_fault``).
    on_result:
        Callback ``(individual, epoch_trace)`` after every dispatched
        job settles; the orchestrator wires the eval-cache's
        ``register_remote`` here so leader outcomes prime the cache.
    arena:
        Optional :class:`~repro.xfel.shm.SharedArena` this pool owns;
        released in :meth:`close` after the workers have exited.
    """

    backend = "process"

    def __init__(
        self,
        spec: EvalSpec,
        n_workers: int = 1,
        *,
        policy: FaultPolicy | None = None,
        on_fault_event=None,
        observers: list | None = None,
        on_fault=None,
        on_result=None,
        arena: SharedArena | None = None,
        startup_timeout: float = 120.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.spec = spec
        self.n_workers = int(n_workers)
        self.policy = policy
        self.on_fault_event = on_fault_event
        self.observers = observers if observers is not None else []
        self.on_fault = on_fault
        self.on_result = on_result
        self.arena = arena
        self.startup_timeout = float(startup_timeout)
        self.reports: list[PoolReport] = []
        self.events: list[FaultEvent] = []
        self.n_killed = 0
        self._ctx = mp.get_context("spawn")
        self._workers: list[_Worker | None] = [None] * self.n_workers
        self._closed = False
        self._stream: _ProcStreamState | None = None

    # -- worker lifecycle -------------------------------------------------------

    def _respawn(self, slot: int) -> _Worker:
        worker = _Worker(self._ctx, self.spec, slot)
        worker.await_ready(self.startup_timeout)
        self._workers[slot] = worker
        return worker

    def _ensure_workers(self) -> None:
        fresh = []
        for slot in range(self.n_workers):
            worker = self._workers[slot]
            if worker is None or not worker.process.is_alive():
                fresh.append(_Worker(self._ctx, self.spec, slot))
                self._workers[slot] = fresh[-1]
        budget = Stopwatch().start()
        for worker in fresh:
            worker.await_ready(max(self.startup_timeout - budget.elapsed(), 0.0))

    def _kill(self, worker: _Worker) -> None:
        """Hard-kill a worker (timed-out attempt); the slot respawns lazily."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - close on a broken pipe
            pass
        worker.process.terminate()
        worker.process.join(5.0)
        if worker.process.is_alive():  # pragma: no cover - terminate resisted
            worker.process.kill()
            worker.process.join(5.0)
        self._workers[worker.index] = None
        self.n_killed += 1
        _LOG.info("hard-killed worker %d (timeout)", worker.index)

    def alive_workers(self) -> int:
        """Worker processes currently running (leak check for tests)."""
        return sum(
            1
            for worker in self._workers
            if worker is not None and worker.process.is_alive()
        )

    def close(self) -> None:
        """Stop every worker and release the shared-memory arena (idempotent)."""
        if self._closed:
            return
        if self._stream is not None:
            self.finish()
        self._closed = True
        for slot, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                worker.conn.send(None)  # graceful sentinel
            except (BrokenPipeError, OSError):  # pragma: no cover - worker already gone
                pass
            worker.process.join(5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            self._workers[slot] = None
        if self.arena is not None:
            self.arena.close()

    # -- parent-side fault routing (mirrors FaultTolerantEvaluator) -------------

    def _emit(self, individual, attempt, kind, action, exc, backoff, detail) -> None:
        event = FaultEvent(
            model_id=individual.model_id,
            attempt=attempt,
            kind=kind,
            action=action,
            error=str(exc),
            backoff_seconds=backoff,
            detail=detail,
            # the attempt ran in a killable process: a timeout terminated
            # it for real, so nothing keeps computing in the background
            timeout_leaked=False,
        )
        self.events.append(event)
        individual.fault_events.append(event.to_dict())
        if self.on_fault_event is not None:
            self.on_fault_event(individual, event.to_dict())
        log = _LOG.warning if action == "quarantine" else _LOG.info
        log(
            "model %d attempt %d %s fault -> %s: %s",
            individual.model_id,
            attempt,
            kind,
            action,
            exc,
        )

    def _quarantine(self, individual: Individual) -> None:
        policy = self.policy
        individual.fitness = float(policy.quarantine_fitness)
        individual.flops = int(policy.quarantine_flops)
        individual.result = None
        individual.epoch_seconds = []
        individual.quarantined = True

    def _replay(self, individual: Individual, trace) -> None:
        """Fire the per-epoch observers as the serial path would have."""
        for epoch, fitness, prediction, stats in trace:
            context = {"network": None, "trainer": None, "epoch_stats": stats}
            for observer in list(self.observers):
                observer(individual, epoch, fitness, prediction, context)

    # -- settling ---------------------------------------------------------------

    def _finish(self, job: _Job, worker_index: int, end: float, timings: dict) -> None:
        timings[job.order] = JobTiming(
            job.individual.model_id, worker_index, job.first_start, end
        )
        if self._stream is not None and timings is self._stream.timings:
            self._stream.settled_jobs.append(job)
        if self.on_result is not None:
            self.on_result(
                job.individual, [(e, f, p) for e, f, p, _ in job.trace]
            )

    def _route_fault(
        self, job, worker_index, exc, end, clock, queue, errors, timings
    ) -> int:
        """Apply the policy to a failed attempt; returns 1 when the job settled."""
        individual = job.individual
        individual.eval_attempt = job.attempt
        kind, detail = FaultTolerantEvaluator._classify(exc)
        if self.policy is None:
            errors[job.order] = exc
            self._finish(job, worker_index, end, timings)
            return 1
        retriable = job.attempt < self.policy.max_retries and (
            kind != "numerical" or self.policy.retry_numerical
        )
        if not retriable:
            self._emit(individual, job.attempt, kind, "quarantine", exc, 0.0, detail)
            self._quarantine(individual)
            self._finish(job, worker_index, end, timings)
            return 1
        backoff = self.policy.backoff_for(job.attempt)
        self._emit(individual, job.attempt, kind, "retry", exc, backoff, detail)
        job.attempt += 1
        job.ready_at = clock.elapsed() + backoff
        # front of the queue: finish this candidate before starting new
        # ones, like the serial retry loop
        queue.appendleft(job)
        return 0

    def _settle_result(
        self, worker, result: EvalResult, clock, queue, busy, errors, timings
    ) -> int:
        job = worker.job
        worker.job = None
        end = clock.elapsed()
        busy[worker.index] += end - job.attempt_start
        individual = job.individual
        job.trace = result.trace
        # epochs measured before a fault were observed live in the serial
        # path; replay them before any fault bookkeeping
        self._replay(individual, result.trace)
        if result.error is not None:
            exc = result.exception()
            if result.on_fault_fired and self.on_fault is not None:
                self.on_fault(individual, exc)
            return self._route_fault(
                job, worker.index, exc, end, clock, queue, errors, timings
            )
        individual.eval_attempt = result.attempt
        individual.fitness = result.fitness
        individual.flops = result.flops
        individual.result = result.result
        individual.epoch_seconds = list(result.epoch_seconds)
        individual.arena_enabled = result.arena_enabled
        individual.arena_peak_bytes = result.arena_peak_bytes
        self._finish(job, worker.index, end, timings)
        return 1

    def _settle_timeout(self, worker, clock, queue, busy, errors, timings) -> int:
        job = worker.job
        worker.job = None
        end = clock.elapsed()
        busy[worker.index] += end - job.attempt_start
        job.trace = ()
        self._kill(worker)
        exc = EvaluationTimeout(
            f"evaluation of model {job.individual.model_id} attempt "
            f"{job.attempt} exceeded {self.policy.timeout_seconds}s"
        )
        return self._route_fault(
            job, worker.index, exc, end, clock, queue, errors, timings
        )

    def _settle_death(self, worker, clock, queue, errors, timings, busy) -> int:
        """A worker died without delivering a result (crash at OS level)."""
        job = worker.job
        worker.job = None
        end = clock.elapsed()
        busy[worker.index] += end - job.attempt_start
        job.trace = ()
        self._kill(worker)
        exc = RuntimeError(
            f"worker process died while evaluating model "
            f"{job.individual.model_id} attempt {job.attempt}"
        )
        return self._route_fault(
            job, worker.index, exc, end, clock, queue, errors, timings
        )

    # -- dispatch loop ----------------------------------------------------------

    def _dispatch(self, queue, clock) -> None:
        """Hand ready jobs to free workers, preserving submission order."""
        for slot in range(self.n_workers):
            if not queue:
                return
            if queue[0].ready_at > clock.elapsed():
                return  # head in backoff; later jobs must not overtake it
            worker = self._workers[slot]
            if worker is not None and worker.job is not None:
                continue
            if worker is None or not worker.process.is_alive():
                worker = self._respawn(slot)
            job = queue.popleft()
            start = clock.elapsed()
            if job.first_start is None:
                job.first_start = start
            job.attempt_start = start
            timeout = self.policy.timeout_seconds if self.policy else None
            job.deadline = (
                None if timeout is None else clock.elapsed() + float(timeout)
            )
            worker.job = job
            worker.conn.send(
                EvalTask(
                    model_id=job.individual.model_id,
                    generation=job.individual.generation,
                    attempt=job.attempt,
                    genome=job.individual.genome,
                    budget=job.individual.budget_assigned,
                )
            )

    def _wait_and_settle(self, queue, clock, busy, errors, timings) -> int:
        inflight = [
            w for w in self._workers if w is not None and w.job is not None
        ]
        if not inflight:
            if queue:  # head is backing off; sleep toward its ready time
                time.sleep(min(max(queue[0].ready_at - clock.elapsed(), 0.0), 0.1))
            return 0
        waits = [
            max(w.job.deadline - clock.elapsed(), 0.0)
            for w in inflight
            if w.job.deadline is not None
        ]
        if queue and len(inflight) < self.n_workers:
            waits.append(max(queue[0].ready_at - clock.elapsed(), 0.0))
        timeout = min(waits) if waits else None
        ready = connection.wait([w.conn for w in inflight], timeout)
        settled = 0
        for conn in ready:
            worker = next(w for w in inflight if w.conn is conn)
            try:
                payload = conn.recv()
            except (EOFError, ConnectionResetError, OSError):
                settled += self._settle_death(
                    worker, clock, queue, errors, timings, busy
                )
                continue
            settled += self._settle_result(
                worker, payload, clock, queue, busy, errors, timings
            )
        now = clock.elapsed()
        for worker in inflight:
            if (
                worker.job is not None
                and worker.job.deadline is not None
                and worker.job.deadline <= now
            ):
                settled += self._settle_timeout(
                    worker, clock, queue, busy, errors, timings
                )
        return settled

    def evaluate_generation(self, individuals: list[Individual]) -> list[Individual]:
        """Evaluate one generation on the worker processes; blocks until settled.

        Matches :class:`~repro.scheduler.pool.FifoWorkerPool` error
        semantics: every job settles first, one error re-raises as
        itself, several raise an ``ExceptionGroup`` (in submission
        order).  With a :class:`~repro.scheduler.faults.FaultPolicy`,
        faults retry/quarantine instead of propagating.
        """
        if self._closed:
            raise RuntimeError("ProcessWorkerPool is closed")
        if self._stream is not None:
            raise RuntimeError(
                "a stream is open on this pool; finish() it before batch evaluation"
            )
        if not individuals:
            return individuals
        self._ensure_workers()
        clock = Stopwatch().start()
        queue = deque(_Job(ind, order) for order, ind in enumerate(individuals))
        errors: dict[int, Exception] = {}
        timings: dict[int, JobTiming] = {}
        busy = [0.0] * self.n_workers
        remaining = len(individuals)
        while remaining:
            self._dispatch(queue, clock)
            remaining -= self._wait_and_settle(queue, clock, busy, errors, timings)
        clock.stop()
        self.reports.append(
            PoolReport(
                n_workers=self.n_workers,
                wall_seconds=clock.total,
                n_jobs=len(individuals),
                backend="process",
                jobs=tuple(timings[i] for i in sorted(timings)),
                worker_busy_seconds=tuple(busy),
            )
        )
        errs = [errors[i] for i in sorted(errors)]
        if len(errs) == 1:
            raise errs[0]
        if errs:
            raise ExceptionGroup(
                f"{len(errs)} of {len(individuals)} evaluations failed", errs
            )
        return individuals

    # -- streaming seam (steady-state evolution) --------------------------------

    def submit(self, individual: Individual) -> None:
        """Queue one evaluation on the stream (FIFO dispatch order).

        Opens the stream lazily on first use; dispatches immediately so
        a free worker picks the job up without waiting for the consumer
        to call :meth:`settled`.
        """
        if self._closed:
            raise RuntimeError("ProcessWorkerPool is closed")
        if self._stream is None:
            self._ensure_workers()
            self._stream = _ProcStreamState(self.n_workers)
        state = self._stream
        state.queue.append(_Job(individual, state.order))
        state.order += 1
        self._dispatch(state.queue, state.clock)

    def settled(self) -> Individual:
        """Block for the next completed evaluation, in any order.

        Without a :class:`~repro.scheduler.faults.FaultPolicy`, the
        error of a failed job raises here (in settle order); with a
        policy, faults retry/quarantine exactly as on the batch path.
        """
        state = self._stream
        while state is not None and not state.settled_jobs:
            if state.n_settled >= state.order:
                state = None
                break
            self._dispatch(state.queue, state.clock)
            state.n_settled += self._wait_and_settle(
                state.queue, state.clock, state.busy, state.errors, state.timings
            )
        if state is None:
            raise RuntimeError("no evaluations in flight")
        job = state.settled_jobs.popleft()
        if job.order in state.errors:
            raise state.errors.pop(job.order)
        return job.individual

    def on_commit(self, individual: Individual) -> None:
        """Nothing to do: the pool holds no commit-ordered state."""

    def finish(self) -> PoolReport | None:
        """Drain the stream and record one report covering the whole run."""
        state = self._stream
        if state is None:
            return None
        while state.n_settled < state.order:
            self._dispatch(state.queue, state.clock)
            state.n_settled += self._wait_and_settle(
                state.queue, state.clock, state.busy, state.errors, state.timings
            )
        self._stream = None
        state.clock.stop()
        report = PoolReport(
            n_workers=self.n_workers,
            wall_seconds=state.clock.total,
            n_jobs=state.order,
            backend="process",
            jobs=tuple(state.timings[i] for i in sorted(state.timings)),
            worker_busy_seconds=tuple(state.busy),
        )
        self.reports.append(report)
        return report

    @property
    def total_wall_seconds(self) -> float:
        """Measured wall time across all generations run so far."""
        return sum(r.wall_seconds for r in self.reports)
