"""Fault-tolerant candidate evaluation: retry, timeout, quarantine.

The paper's workflow implicitly assumes every candidate network trains
to a usable fitness.  Real runs do not cooperate: training crashes,
diverges into NaN (the sanitizer's :class:`~repro.tooling.sanitizer.
NumericalFault`), or hangs.  Without a policy, one bad genome aborts a
multi-generation search.  PEng4NN and Baker et al. treat degenerate
learning curves as a normal outcome to route around; this module gives
the A4NN stack the same stance:

* :class:`FaultPolicy` — per-evaluation timeout, bounded retries with
  exponential backoff and re-seeded RNG children, and quarantine
  objectives for candidates that exhaust their attempts.
* :class:`FaultTolerantEvaluator` — wraps any
  :class:`~repro.nas.evaluation.Evaluator`; a quarantined individual
  receives a penalized (fitness, FLOPs) pair, so NSGA-II environmental
  selection discards it naturally instead of the search dying.
* :class:`FaultInjectionConfig` / :class:`FaultInjectingEvaluator` — a
  deterministic fault-injection harness (crash, hang-past-timeout, and
  NaN-loss modes, seeded from the run's RNG stream) used by the tier-1
  fault suite to prove searches survive injected faults end-to-end.

Every fault, retry, and quarantine decision is emitted as a
:class:`FaultEvent` both onto the individual and through the
``on_event`` callback, which the workflow orchestrator wires into the
lineage tracker so the data commons keeps the full record trail.

Determinism notes: injection decisions are drawn from
``stream.generator("inject", model_id, attempt)``, and retried attempts
re-derive their training RNG children from ``("retry", attempt)`` salts
(attempt 0 uses the historical stream names, so fault-free runs are
byte-identical to pre-fault-policy runs).  Timed-out attempts run the
inner evaluation against a *shadow* individual on a daemon thread;
Python threads cannot be killed, so an abandoned attempt may keep
computing in the background, but its results are discarded and never
touch the real individual.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.nas.population import Individual
from repro.tooling.sanitizer import NumericalFault
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.utils.validation import ValidationError

__all__ = [
    "EvaluationTimeout",
    "InjectedFault",
    "FaultEvent",
    "FaultPolicy",
    "FaultTolerantEvaluator",
    "FaultInjectionConfig",
    "FaultInjectingEvaluator",
]

_LOG = get_logger("scheduler.faults")

#: Penalized FLOPs objective for quarantined candidates: large enough to
#: be dominated by every real architecture, finite so NSGA-II's sort and
#: crowding-distance arithmetic stay well-behaved.
QUARANTINE_FLOPS = 10**15


class EvaluationTimeout(RuntimeError):
    """An evaluation attempt exceeded the policy's timeout."""


class InjectedFault(RuntimeError):
    """A deliberately injected evaluation failure (test harness).

    Attributes
    ----------
    mode:
        ``"crash"`` or ``"hang"`` (NaN injection raises
        :class:`~repro.tooling.sanitizer.NumericalFault` instead, so the
        policy's numerical-fault routing is exercised for real).
    """

    def __init__(self, mode: str, message: str) -> None:
        super().__init__(message)
        self.mode = mode

    def __reduce__(self):
        # exceptions pickle via their args by default, which would drop
        # ``mode``; the process backend transports these across workers
        return (type(self), (self.mode, str(self)))


@dataclass(frozen=True)
class FaultEvent:
    """One fault-handling decision for one evaluation attempt.

    ``timeout_leaked`` records whether the timed-out attempt's
    computation is still running somewhere: the thread/serial backends
    cannot kill a Python thread, so their abandoned attempts keep
    computing in the background (leaked) until they finish on their
    own.  Only the process backend hard-kills the worker, so only there
    is a timeout event guaranteed non-leaking (see DESIGN §8).
    """

    model_id: int
    attempt: int
    kind: str  # "crash" | "timeout" | "numerical"
    action: str  # "retry" | "quarantine"
    error: str
    backoff_seconds: float = 0.0
    detail: dict = field(default_factory=dict)
    timeout_leaked: bool = False

    def to_dict(self) -> dict:
        return {
            "model_id": self.model_id,
            "attempt": self.attempt,
            "kind": self.kind,
            "action": self.action,
            "error": self.error,
            "backoff_seconds": self.backoff_seconds,
            "detail": dict(self.detail),
            "timeout_leaked": self.timeout_leaked,
        }


@dataclass(frozen=True)
class FaultPolicy:
    """How the workflow handles failing candidate evaluations.

    Attributes
    ----------
    max_retries:
        Additional attempts after the first failure (0 = quarantine on
        the first fault).  Each retry re-derives the candidate's
        training RNG children with a ``("retry", attempt)`` salt, so a
        crash caused by an unlucky initialization gets a genuinely
        different draw while staying fully reproducible.
    backoff_seconds:
        Base backoff before retry ``n`` sleeps ``backoff_seconds *
        2**n`` (0 disables sleeping; retries are then immediate).
    timeout_seconds:
        Wall-clock budget per evaluation attempt; ``None`` disables the
        timeout.  Timed-out attempts count as faults like any other.
    retry_numerical:
        Whether :class:`~repro.tooling.sanitizer.NumericalFault`s are
        retried.  Off by default: NaN divergence is usually a property
        of the architecture, not the seed, so the candidate goes
        straight to quarantine.
    quarantine_fitness:
        Accuracy (percent) assigned to quarantined candidates.
    quarantine_flops:
        FLOPs objective assigned to quarantined candidates.  The
        default is dominated by every real architecture, so NSGA-II
        discards quarantined genomes on both objectives.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.0
    timeout_seconds: float | None = None
    retry_numerical: bool = False
    quarantine_fitness: float = 0.0
    quarantine_flops: int = QUARANTINE_FLOPS

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValidationError(f"max_retries must be >= 0, got {self.max_retries}")
        if float(self.backoff_seconds) < 0:
            raise ValidationError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.timeout_seconds is not None and float(self.timeout_seconds) <= 0:
            raise ValidationError(
                f"timeout_seconds must be positive or None, got {self.timeout_seconds}"
            )
        if int(self.quarantine_flops) <= 0:
            raise ValidationError(
                f"quarantine_flops must be positive, got {self.quarantine_flops}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff to sleep before re-running after failed ``attempt``."""
        return float(self.backoff_seconds) * (2 ** int(attempt))

    def to_dict(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "backoff_seconds": self.backoff_seconds,
            "timeout_seconds": self.timeout_seconds,
            "retry_numerical": self.retry_numerical,
            "quarantine_fitness": self.quarantine_fitness,
            "quarantine_flops": self.quarantine_flops,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPolicy":
        return cls(**payload)


@dataclass(frozen=True)
class FaultInjectionConfig:
    """Deterministic fault injection for testing the tolerance layer.

    Attributes
    ----------
    rate:
        Probability an evaluation *attempt* is sabotaged, drawn from
        ``stream.generator("inject", model_id, attempt)`` — so the same
        seed always injects the same faults into the same candidates,
        and a retried attempt re-draws (it may succeed).
    modes:
        Fault modes to sample uniformly: ``"crash"`` raises immediately,
        ``"hang"`` sleeps ``hang_seconds`` then raises (tripping the
        policy timeout when one is configured), ``"nan"`` raises a
        sanitizer-shaped :class:`~repro.tooling.sanitizer.NumericalFault`.
    hang_seconds:
        Sleep duration of the hang mode; set it above the policy's
        ``timeout_seconds`` to exercise the timeout path.
    """

    rate: float = 0.0
    modes: tuple = ("crash", "hang", "nan")
    hang_seconds: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.rate) <= 1.0:
            raise ValidationError(f"rate must be in [0, 1], got {self.rate}")
        unknown = set(self.modes) - {"crash", "hang", "nan"}
        if not self.modes or unknown:
            raise ValidationError(
                f"modes must be a non-empty subset of crash/hang/nan, got {self.modes}"
            )
        if float(self.hang_seconds) < 0:
            raise ValidationError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "modes": list(self.modes),
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultInjectionConfig":
        payload = dict(payload)
        if "modes" in payload:
            payload["modes"] = tuple(payload["modes"])
        return cls(**payload)


class FaultInjectingEvaluator:
    """Evaluator wrapper that deterministically sabotages attempts.

    Injection happens *before* the inner evaluator runs, so a sabotaged
    attempt writes nothing into observers or lineage — exactly like a
    worker process dying before useful work.

    Parameters
    ----------
    evaluator:
        The real evaluation backend.
    config:
        Injection rate, modes, and hang duration.
    rng_stream:
        Stream the injection decisions derive from (use a child of the
        run's root stream so injection is part of the reproducible run).
    """

    def __init__(
        self,
        evaluator,
        config: FaultInjectionConfig,
        rng_stream: RngStream | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.config = config
        self.rng_stream = rng_stream or RngStream(0)
        self.max_epochs = evaluator.max_epochs
        self.n_injected = 0

    def evaluate(self, individual: Individual) -> Individual:
        attempt = getattr(individual, "eval_attempt", 0)
        rng = self.rng_stream.generator("inject", individual.model_id, attempt)
        if rng.random() < self.config.rate:
            mode = self.config.modes[int(rng.integers(len(self.config.modes)))]
            self.n_injected += 1
            _LOG.debug(
                "injecting %s into model %d attempt %d", mode, individual.model_id, attempt
            )
            if mode == "hang":
                time.sleep(self.config.hang_seconds)
                raise InjectedFault(
                    "hang",
                    f"injected hang ({self.config.hang_seconds}s) in model "
                    f"{individual.model_id} attempt {attempt}",
                )
            if mode == "nan":
                raise NumericalFault(
                    "nonfinite-loss",
                    f"injected NaN loss in model {individual.model_id} attempt {attempt}",
                    model=f"model-{individual.model_id}",
                    epoch=1,
                    detail={"injected": True},
                )
            raise InjectedFault(
                "crash",
                f"injected crash in model {individual.model_id} attempt {attempt}",
            )
        return self.evaluator.evaluate(individual)


class FaultTolerantEvaluator:
    """Evaluator wrapper applying a :class:`FaultPolicy` to every candidate.

    Implements the same ``evaluate(individual)`` protocol as the backends
    it wraps, so the search, the FIFO worker pool, and the lineage hooks
    cannot tell it apart from a raw evaluator.  A candidate that exhausts
    its attempts is *quarantined*: it comes back evaluated, carrying the
    policy's penalized objectives and ``individual.quarantined = True``,
    and NSGA-II selection discards it on dominance alone.

    Parameters
    ----------
    evaluator:
        Inner backend (optionally already wrapped in a
        :class:`FaultInjectingEvaluator`).
    policy:
        Retry/timeout/quarantine settings.
    on_event:
        Callback ``on_event(individual, event_dict)`` invoked for every
        fault decision (the orchestrator wires the lineage tracker's
        :meth:`~repro.lineage.tracker.LineageTracker.observe_fault_event`
        here).
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).
    """

    def __init__(
        self,
        evaluator,
        policy: FaultPolicy | None = None,
        *,
        on_event=None,
        sleep=time.sleep,
    ) -> None:
        self.evaluator = evaluator
        self.policy = policy or FaultPolicy()
        self.on_event = on_event
        self._sleep = sleep
        self.max_epochs = evaluator.max_epochs
        self.events: list[FaultEvent] = []
        #: Shadow threads abandoned by timed-out attempts.  Python
        #: threads cannot be killed, so these keep computing in the
        #: background until they finish on their own; the process
        #: backend is the only one that truly reclaims a hung
        #: evaluation (DESIGN §8).
        self.leaked_threads: list[threading.Thread] = []

    # -- attempt execution ------------------------------------------------------

    def _attempt(self, individual: Individual) -> None:
        """Run one evaluation attempt, enforcing the timeout if configured."""
        timeout = self.policy.timeout_seconds
        if timeout is None:
            self.evaluator.evaluate(individual)
            return
        # Run against a shadow so an abandoned (timed-out) thread can
        # never mutate the real individual after quarantine.
        shadow = Individual(
            genome=individual.genome,
            model_id=individual.model_id,
            generation=individual.generation,
            eval_attempt=individual.eval_attempt,
        )
        outcome: dict = {}

        def target() -> None:
            try:
                self.evaluator.evaluate(shadow)
            except BaseException as exc:  # a4nn: noqa(NUM001) -- transported to the caller thread and re-raised there
                outcome["error"] = exc

        thread = threading.Thread(
            target=target,
            name=f"eval-model{individual.model_id}-a{individual.eval_attempt}",
            daemon=True,
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            self.leaked_threads.append(thread)
            raise EvaluationTimeout(
                f"evaluation of model {individual.model_id} attempt "
                f"{individual.eval_attempt} exceeded {timeout}s"
            )
        if "error" in outcome:
            raise outcome["error"]
        individual.fitness = shadow.fitness
        individual.flops = shadow.flops
        individual.result = shadow.result
        individual.epoch_seconds = shadow.epoch_seconds

    # -- fault routing ----------------------------------------------------------

    @staticmethod
    def _classify(exc: Exception) -> tuple[str, dict]:
        if isinstance(exc, EvaluationTimeout):
            return "timeout", {}
        if isinstance(exc, NumericalFault):
            return "numerical", exc.to_dict()
        return "crash", {"type": type(exc).__name__}

    def n_leaked_threads(self) -> int:
        """Abandoned evaluation threads still running right now."""
        self.leaked_threads = [t for t in self.leaked_threads if t.is_alive()]
        return len(self.leaked_threads)

    def _emit(
        self,
        individual: Individual,
        attempt: int,
        kind: str,
        action: str,
        exc: Exception,
        backoff: float,
        detail: dict,
    ) -> None:
        event = FaultEvent(
            model_id=individual.model_id,
            attempt=attempt,
            kind=kind,
            action=action,
            error=str(exc),
            backoff_seconds=backoff,
            detail=detail,
            # threads cannot be hard-killed: every thread-path timeout
            # leaves its shadow evaluation running in the background
            timeout_leaked=kind == "timeout",
        )
        self.events.append(event)
        individual.fault_events.append(event.to_dict())
        if self.on_event is not None:
            self.on_event(individual, event.to_dict())
        log = _LOG.warning if action == "quarantine" else _LOG.info
        log(
            "model %d attempt %d %s fault -> %s: %s",
            individual.model_id,
            attempt,
            kind,
            action,
            exc,
        )

    def _quarantine(self, individual: Individual) -> Individual:
        policy = self.policy
        individual.fitness = float(policy.quarantine_fitness)
        individual.flops = int(policy.quarantine_flops)
        individual.result = None
        individual.epoch_seconds = []
        individual.quarantined = True
        return individual

    # -- the policy loop --------------------------------------------------------

    def evaluate(self, individual: Individual) -> Individual:
        """Evaluate with bounded retries; quarantine instead of raising."""
        policy = self.policy
        for attempt in range(policy.max_retries + 1):
            individual.eval_attempt = attempt
            try:
                self._attempt(individual)
            except Exception as exc:  # a4nn: noqa(NUM001) -- every fault is classified, logged, and recorded into lineage
                kind, detail = self._classify(exc)
                retriable = attempt < policy.max_retries and (
                    kind != "numerical" or policy.retry_numerical
                )
                if not retriable:
                    self._emit(individual, attempt, kind, "quarantine", exc, 0.0, detail)
                    return self._quarantine(individual)
                backoff = policy.backoff_for(attempt)
                self._emit(individual, attempt, kind, "retry", exc, backoff, detail)
                if backoff > 0:
                    self._sleep(backoff)
            else:
                return individual
        raise AssertionError("unreachable: retry loop is bounded")  # pragma: no cover
