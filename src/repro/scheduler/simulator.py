"""Wall-time simulation of a completed search on an N-GPU cluster.

Takes the per-epoch durations recorded for every evaluated network (real
measurements in real mode, cost-model draws in surrogate mode) and
replays them through the FIFO generational scheduler, yielding the wall
time the paper plots in Figure 9 for 1 and 4 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nas.search import SearchResult
from repro.scheduler.fifo import Job, ScheduleResult, schedule_run

__all__ = ["WallTimeReport", "simulate_walltime", "jobs_by_generation"]


@dataclass(frozen=True)
class WallTimeReport:
    """Simulated wall-clock outcome for one search on one pool size.

    Attributes
    ----------
    n_gpus:
        Pool size.
    wall_seconds:
        Makespan of the schedule (incl. prediction-engine overhead when
        supplied).
    busy_seconds:
        Aggregate GPU compute time.
    idle_seconds:
        Aggregate GPU downtime (generation-barrier effect).
    utilization:
        ``busy / (makespan * n_gpus)``.
    engine_overhead_seconds:
        Total prediction-engine time folded into the jobs.
    total_epochs:
        Epochs actually executed across all jobs.
    """

    n_gpus: int
    wall_seconds: float
    busy_seconds: float
    idle_seconds: float
    utilization: float
    engine_overhead_seconds: float
    total_epochs: int

    @property
    def wall_hours(self) -> float:
        return self.wall_seconds / 3600.0


def jobs_by_generation(
    result: SearchResult, *, include_engine_overhead: bool = True
) -> list[list[Job]]:
    """Convert a search archive into generation-grouped scheduler jobs.

    Engine overhead is amortized into each job's epochs (the engine runs
    in situ, on the same resources, between epochs — Algorithm 1), so it
    lengthens the schedule exactly where it occurred.

    Quarantined members contributed no completed training, so they are
    excluded from the simulated workload — as are zero-budget surrogate
    skips, which never occupied a worker at all.
    """
    by_generation: dict[int, list[Job]] = {}
    for member in result.archive:
        if member.quarantined:
            continue
        if member.result is None and member.budget_assigned == 0:
            continue
        if member.result is None:
            raise ValueError(f"model {member.model_id} has no training result")
        epoch_seconds = list(member.epoch_seconds)
        if len(epoch_seconds) != member.result.epochs_trained:
            raise ValueError(
                f"model {member.model_id}: {len(epoch_seconds)} epoch durations "
                f"for {member.result.epochs_trained} trained epochs"
            )
        if include_engine_overhead and epoch_seconds:
            per_epoch = member.result.engine_overhead_seconds / len(epoch_seconds)
            epoch_seconds = [s + per_epoch for s in epoch_seconds]
        by_generation.setdefault(member.generation, []).append(
            Job(member.model_id, tuple(epoch_seconds))
        )
    return [by_generation[g] for g in sorted(by_generation)]


def simulate_walltime(
    result: SearchResult,
    n_gpus: int,
    *,
    include_engine_overhead: bool = True,
    barrier: bool = True,
) -> WallTimeReport:
    """Replay a search's training workload on an ``n_gpus`` pool.

    ``barrier=False`` removes the generation barrier (asynchronous-NAS
    ablation; see :func:`repro.scheduler.fifo.schedule_run`).
    """
    generations = jobs_by_generation(
        result, include_engine_overhead=include_engine_overhead
    )
    schedule: ScheduleResult = schedule_run(generations, n_gpus, barrier=barrier)
    overhead = sum(
        m.result.engine_overhead_seconds for m in result.archive if m.result
    )
    return WallTimeReport(
        n_gpus=n_gpus,
        wall_seconds=schedule.makespan,
        busy_seconds=schedule.busy_seconds,
        idle_seconds=schedule.idle_seconds,
        utilization=schedule.utilization,
        engine_overhead_seconds=overhead if include_engine_overhead else 0.0,
        total_epochs=sum(job.n_epochs for gen in generations for job in gen),
    )
