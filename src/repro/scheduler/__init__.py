"""Workflow resource manager (Ray substitute).

FIFO dynamic scheduling of per-network training jobs onto accelerators
(paper §2.5), in two forms: a deterministic discrete-event simulator
that replays recorded epoch durations on an N-GPU pool
(:mod:`repro.scheduler.simulator`), and real worker pools for machines
with actual parallelism — threads (:mod:`repro.scheduler.pool`) or
spawned processes with a shared-memory dataset and hard-kill timeouts
(:mod:`repro.scheduler.procpool`).  The
FLOPs→seconds cost model (:mod:`repro.scheduler.costmodel`) calibrates
simulated epoch durations to the paper's single-V100 wall times.
"""

from repro.scheduler.costmodel import PAPER_TRAIN_IMAGES, EpochCostModel
from repro.scheduler.faults import (
    EvaluationTimeout,
    FaultEvent,
    FaultInjectingEvaluator,
    FaultInjectionConfig,
    FaultPolicy,
    FaultTolerantEvaluator,
    InjectedFault,
)
from repro.scheduler.fifo import (
    Job,
    JobPlacement,
    ScheduleResult,
    schedule_generation,
    schedule_run,
)
from repro.scheduler.pool import FifoWorkerPool, JobTiming, PoolReport, WorkerPool
from repro.scheduler.procpool import (
    EvalResult,
    EvalSpec,
    EvalTask,
    ProcessWorkerPool,
)
from repro.scheduler.resources import Gpu, GpuPool
from repro.scheduler.simulator import WallTimeReport, jobs_by_generation, simulate_walltime
from repro.scheduler.trace import (
    ascii_timeline,
    chrome_trace,
    pool_chrome_trace,
    pool_timeline,
)

__all__ = [
    "PAPER_TRAIN_IMAGES",
    "EpochCostModel",
    "EvaluationTimeout",
    "FaultEvent",
    "FaultInjectingEvaluator",
    "FaultInjectionConfig",
    "FaultPolicy",
    "FaultTolerantEvaluator",
    "InjectedFault",
    "Job",
    "JobPlacement",
    "ScheduleResult",
    "schedule_generation",
    "schedule_run",
    "FifoWorkerPool",
    "JobTiming",
    "PoolReport",
    "WorkerPool",
    "EvalResult",
    "EvalSpec",
    "EvalTask",
    "ProcessWorkerPool",
    "Gpu",
    "GpuPool",
    "WallTimeReport",
    "jobs_by_generation",
    "simulate_walltime",
    "ascii_timeline",
    "chrome_trace",
    "pool_chrome_trace",
    "pool_timeline",
]
