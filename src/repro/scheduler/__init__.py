"""Workflow resource manager (Ray substitute).

FIFO dynamic scheduling of per-network training jobs onto accelerators
(paper §2.5), in two forms: a deterministic discrete-event simulator
that replays recorded epoch durations on an N-GPU pool
(:mod:`repro.scheduler.simulator`), and a real thread-worker pool for
machines with actual parallelism (:mod:`repro.scheduler.pool`).  The
FLOPs→seconds cost model (:mod:`repro.scheduler.costmodel`) calibrates
simulated epoch durations to the paper's single-V100 wall times.
"""

from repro.scheduler.costmodel import PAPER_TRAIN_IMAGES, EpochCostModel
from repro.scheduler.faults import (
    EvaluationTimeout,
    FaultEvent,
    FaultInjectingEvaluator,
    FaultInjectionConfig,
    FaultPolicy,
    FaultTolerantEvaluator,
    InjectedFault,
)
from repro.scheduler.fifo import (
    Job,
    JobPlacement,
    ScheduleResult,
    schedule_generation,
    schedule_run,
)
from repro.scheduler.pool import FifoWorkerPool, PoolReport
from repro.scheduler.resources import Gpu, GpuPool
from repro.scheduler.simulator import WallTimeReport, jobs_by_generation, simulate_walltime
from repro.scheduler.trace import ascii_timeline, chrome_trace

__all__ = [
    "PAPER_TRAIN_IMAGES",
    "EpochCostModel",
    "EvaluationTimeout",
    "FaultEvent",
    "FaultInjectingEvaluator",
    "FaultInjectionConfig",
    "FaultPolicy",
    "FaultTolerantEvaluator",
    "InjectedFault",
    "Job",
    "JobPlacement",
    "ScheduleResult",
    "schedule_generation",
    "schedule_run",
    "FifoWorkerPool",
    "PoolReport",
    "Gpu",
    "GpuPool",
    "WallTimeReport",
    "jobs_by_generation",
    "simulate_walltime",
    "ascii_timeline",
    "chrome_trace",
]
