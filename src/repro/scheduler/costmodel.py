"""Epoch-duration cost model.

The paper's wall-time results come from measured GPU training; we have
no GPU, so simulated runs need a model mapping an architecture's
per-sample FLOPs and the dataset size to a per-epoch duration on one
(simulated) V100.  A linear model

.. math::  t_{epoch} = t_{fixed} + \\kappa \\cdot FLOPs \\cdot n_{images}

captures the dominant behaviour (arithmetic-bound training with a fixed
per-epoch overhead for data movement and validation).  The default
constants are calibrated so a standalone NSGA-Net run — 100 networks ×
25 epochs over the paper's 63,508-image training split — lands near the
paper's ~50-hour single-GPU wall times (Table 3 plus the Figure 9
savings), making simulated wall-time *shapes* directly comparable.

A small multiplicative jitter models epoch-to-epoch variance ("the
length of each epoch may vary from iteration to iteration", §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EpochCostModel", "PAPER_TRAIN_IMAGES"]

#: Training-split size of the paper's full-scale dataset.
PAPER_TRAIN_IMAGES = 63_508


@dataclass(frozen=True)
class EpochCostModel:
    """Linear FLOPs→seconds model with multiplicative jitter.

    Attributes
    ----------
    fixed_seconds:
        Per-epoch overhead independent of the architecture.
    seconds_per_flop_image:
        Marginal cost per (per-sample FLOP × training image).
    jitter:
        Std-dev of the multiplicative noise factor (0 disables).
    n_images:
        Training images per epoch.
    """

    fixed_seconds: float = 12.0
    seconds_per_flop_image: float = 6.4e-11
    jitter: float = 0.05
    n_images: int = PAPER_TRAIN_IMAGES

    def __post_init__(self) -> None:
        if self.fixed_seconds < 0 or self.seconds_per_flop_image < 0:
            raise ValueError("cost-model coefficients must be non-negative")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")
        if self.n_images <= 0:
            raise ValueError(f"n_images must be positive, got {self.n_images}")

    def mean_epoch_seconds(self, flops: float) -> float:
        """Expected duration of one epoch for a ``flops``-per-sample model."""
        return self.fixed_seconds + self.seconds_per_flop_image * float(flops) * self.n_images

    def sample_epoch_seconds(
        self, flops: float, rng: np.random.Generator, size: int | None = None
    ):
        """Draw jittered epoch duration(s); never below 10% of the mean."""
        mean = self.mean_epoch_seconds(flops)
        if self.jitter == 0:
            return mean if size is None else np.full(size, mean)
        factors = rng.normal(1.0, self.jitter, size=size)
        return np.maximum(mean * factors, 0.1 * mean)
