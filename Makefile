# Developer entry points for the A4NN reproduction.
#
# `make check` is the same linter gate pytest runs as a tier-1 test
# (tests/test_tooling_linter.py::test_repo_source_passes_a4nn_check),
# exposed directly for fast pre-commit iteration.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test bench faults all

all: check test

# static-analysis rule catalog over the package source
check:
	$(PYTHON) -m repro check src

lint: check

# tier-1 test suite
test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q

# fault-tolerance suite: retry/quarantine policy, pool failure
# semantics, and the deterministic fault-injection harness
faults:
	$(PYTHON) -m pytest tests/test_faults.py -q
