# Developer entry points for the A4NN reproduction.
#
# `make check` is the same linter gate pytest runs as a tier-1 test
# (tests/test_tooling_linter.py::test_repo_source_passes_a4nn_check),
# exposed directly for fast pre-commit iteration.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test bench bench-paper bench-scale faults all

all: check test

# static-analysis rule catalog over the package source
check:
	$(PYTHON) -m repro check src

lint: check

# tier-1 test suite
test:
	$(PYTHON) -m pytest -x -q

# evaluation fast-path benchmark: kernel microbenches + seeded
# end-to-end mini search, diffed against the committed document
bench:
	$(PYTHON) -m repro bench --compare BENCH_evalpath.json --min-speedup 1.2

# paper-figure benchmark suite (Fig. 8 convergence regimes etc.)
bench-paper:
	$(PYTHON) -m pytest benchmarks -q

# execution-backend scaling sweep (serial/thread/process × workers),
# diffed structurally against the committed document (wall times are
# machine-dependent and not compared)
bench-scale:
	$(PYTHON) -m repro bench --scaling --compare BENCH_scaling.json

# fault-tolerance suite: retry/quarantine policy, pool failure
# semantics, the deterministic fault-injection harness, and the
# process backend's hard-kill path
faults:
	$(PYTHON) -m pytest tests/test_faults.py tests/test_procpool.py -q
