# Developer entry points for the A4NN reproduction.
#
# `make check` is the same linter gate pytest runs as a tier-1 test
# (tests/test_tooling_linter.py::test_repo_source_passes_a4nn_check),
# exposed directly for fast pre-commit iteration.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test bench bench-kernels bench-paper bench-scale bench-check faults readme-rules all

all: check test

# static-analysis rule catalog over the package source (full semantic
# engine: file rules + project-scoped flow packs, incremental cache
# under .a4nn-cache/, baseline from .a4nn-baseline.json)
check:
	$(PYTHON) -m repro check src

lint: check

# tier-1 test suite
test:
	$(PYTHON) -m pytest -x -q

# evaluation fast-path benchmark: kernel microbenches + seeded
# end-to-end mini search, diffed against the committed document
bench:
	$(PYTHON) -m repro bench --compare BENCH_evalpath.json --min-speedup 1.2

# kernel-tier smoke: alloc-vs-arena microbenches only (seconds, not
# minutes — skips the end-to-end searches); the CI job runs this
bench-kernels:
	$(PYTHON) -m repro bench --kernels-only --repeats 1

# paper-figure benchmark suite (Fig. 8 convergence regimes etc.)
bench-paper:
	$(PYTHON) -m pytest benchmarks -q

# execution-backend scaling sweep (serial/thread/process × workers),
# diffed structurally against the committed document (wall times are
# machine-dependent and not compared)
bench-scale:
	$(PYTHON) -m repro bench --scaling --compare BENCH_scaling.json

# static-analysis engine benchmark: cold vs warm-cache `a4nn check`
# timings, diffed against the committed document
bench-check:
	$(PYTHON) -m repro bench --check --compare BENCH_check.json

# regenerate the README rule-catalog table from the rule registry
# (tests/test_tooling_linter.py asserts it is in sync)
readme-rules:
	$(PYTHON) -c "from pathlib import Path; from repro.tooling.rules import inject_catalog; p = Path('README.md'); p.write_text(inject_catalog(p.read_text(encoding='utf-8')), encoding='utf-8')"

# fault-tolerance suite: retry/quarantine policy, pool failure
# semantics, the deterministic fault-injection harness, and the
# process backend's hard-kill path
faults:
	$(PYTHON) -m pytest tests/test_faults.py tests/test_procpool.py -q
