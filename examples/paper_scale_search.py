#!/usr/bin/env python
"""Paper-scale A4NN vs standalone NSGA-Net with the full workflow stack.

Runs the paper's exact Table 1 + Table 2 configuration (100 networks ×
25-epoch budget) in surrogate mode at every beam intensity, through the
complete orchestrator: prediction engine, NSGA-Net, lineage tracking,
data-commons publication, and discrete-event wall-time simulation on 1
and 4 GPUs.  Takes a couple of minutes; prints the headline numbers of
Figures 7 and 9 and Table 3.

Run:  python examples/paper_scale_search.py [commons_dir]
"""

import sys
import tempfile

from repro.analysis import CommonsQuery
from repro.experiments import paper_config
from repro.lineage import DataCommons
from repro.workflow import run_comparison
from repro.xfel import BeamIntensity


def main() -> None:
    commons_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="a4nn_commons_")
    print(f"data commons: {commons_dir}\n")

    for intensity in BeamIntensity:
        config = paper_config(intensity)
        comparison = run_comparison(config, commons_path=commons_dir)

        a4nn, standalone = comparison.a4nn, comparison.standalone
        print(f"== {intensity.label} beam intensity ==")
        print(
            f"  networks evaluated : {len(a4nn.search.archive)} "
            f"(pop {config.nas.population_size}, {config.nas.generations} generations)"
        )
        print(
            f"  epochs             : standalone {standalone.total_epochs_trained}, "
            f"A4NN {a4nn.total_epochs_trained} "
            f"({comparison.epochs_saved_percent:.1f}% saved)"
        )
        print(
            f"  wall time (1 GPU)  : standalone {standalone.walltime[1].wall_hours:.2f} h, "
            f"A4NN {a4nn.walltime[1].wall_hours:.2f} h "
            f"({comparison.walltime_saved_hours(1):.1f} h saved)"
        )
        print(
            f"  wall time (4 GPUs) : A4NN {a4nn.walltime[4].wall_hours:.2f} h "
            f"({comparison.speedup(1, 4):.2f}x speedup, "
            f"{100 * a4nn.walltime[4].utilization:.0f}% utilization)"
        )
        print(f"  best accuracy      : {a4nn.search.population.best_fitness():.2f}%")
        print(
            f"  engine overhead    : "
            f"{sum(m.result.engine_overhead_seconds for m in a4nn.search.archive):.2f} s total\n"
        )

    commons = DataCommons(commons_dir)
    print(f"published runs: {len(commons.run_ids())}, commons size {commons.size_bytes() / 1e6:.1f} MB")
    query = CommonsQuery.from_commons(commons, commons.run_ids()[0])
    print(f"example query — top 3 models of {commons.run_ids()[0]}:")
    for record in query.top_by_fitness(3):
        print(
            f"  model {record.model_id:3d}: {record.fitness:.2f}% "
            f"({record.epochs_trained} epochs, early={record.terminated_early})"
        )


if __name__ == "__main__":
    main()
