#!/usr/bin/env python
"""Figure-5 style gallery: one protein shot at three beam intensities.

Simulates a single orientation of conformation A, applies the photon
budget of each beam setting, and renders the resulting detector images
as terminal density plots — low intensity is visibly photon-starved,
high intensity nearly noiseless, exactly the axis the paper's
evaluation varies.

Run:  python examples/beam_intensity_gallery.py
"""

import numpy as np

from repro.utils.rng import derive_rng
from repro.xfel import (
    BeamIntensity,
    Detector,
    apply_photon_noise,
    diffraction_pattern,
    make_conformations,
    render_intensity_gallery,
    snr_estimate,
)


def main() -> None:
    conf_a, conf_b = make_conformations()
    detector = Detector(n_pixels=48)
    clean = diffraction_pattern(conf_a, np.eye(3), detector)

    images = {}
    for intensity in BeamIntensity:
        rng = derive_rng(0, "gallery", intensity.label)
        noisy = apply_photon_noise(clean, intensity, rng)
        snr = snr_estimate(clean, noisy)
        images[f"{intensity.label} ({intensity.photons_per_um2:.0e} ph/um^2, {snr:.1f} dB SNR)"] = noisy

    print("Same protein, same orientation, three beam intensities:\n")
    print(render_intensity_gallery(images, width=64))

    # the two conformations produce systematically different patterns
    pattern_b = diffraction_pattern(conf_b, np.eye(3), detector)
    diff = np.abs(clean - pattern_b)
    print("\n|conformation A - conformation B| (the signal the NAS classifies):")
    from repro.xfel import render_pattern

    print(render_pattern(diff, width=64))


if __name__ == "__main__":
    main()
