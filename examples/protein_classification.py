#!/usr/bin/env python
"""End-to-end A4NN in *real mode*: simulate XFEL data, search, train.

A miniature version of the paper's full pipeline, sized to finish on a
laptop CPU in a few minutes:

1. simulate diffraction patterns for two conformations of a synthetic
   eEF2-like protein at a chosen beam intensity;
2. run NSGA-Net with the A4NN prediction engine plugged in — every
   candidate CNN is *actually trained* with the NumPy NN substrate, and
   the engine terminates training early when its fitness predictions
   stabilize;
3. report the Pareto frontier, epoch savings, and the best network.

Run:  python examples/protein_classification.py [low|medium|high]
"""

import sys

from repro.analysis import pareto_frontier, render_network
from repro.core import EngineConfig, PredictionEngine
from repro.nas import DecoderConfig, NSGANet, NSGANetConfig, TrainingEvaluator, decode_genome
from repro.utils.rng import RngStream
from repro.xfel import BeamIntensity, DatasetConfig, generate_dataset

import numpy as np


def main() -> None:
    intensity = BeamIntensity.from_label(sys.argv[1]) if len(sys.argv) > 1 else BeamIntensity.HIGH
    print(f"== A4NN real-mode run, {intensity.label} beam intensity ==")

    # miniature dataset: 120 images/class at 16x16 (paper: 79k at full res)
    dataset = generate_dataset(
        DatasetConfig(intensity=intensity, images_per_class=120, image_size=16)
    )
    print(f"dataset: train {dataset.x_train.shape}, test {dataset.x_test.shape}")

    # miniature search: 4 + 2x4 = 12 networks, 8 epochs each
    max_epochs = 8
    nas_config = NSGANetConfig(
        population_size=4,
        offspring_per_generation=4,
        generations=3,
        max_epochs=max_epochs,
    )
    engine = PredictionEngine(
        EngineConfig(e_pred=max_epochs, c_min=3, n_predictions=3, tolerance=0.75)
    )
    evaluator = TrainingEvaluator(
        dataset,
        engine,
        max_epochs=max_epochs,
        decoder_config=DecoderConfig(dataset.input_shape, 2, channels=(4, 8, 12)),
        rng_stream=RngStream(0).child("eval"),
    )
    search = NSGANet(nas_config, evaluator, rng_stream=RngStream(0).child("search"))
    result = search.run()

    budget = nas_config.max_epochs * len(result.archive)
    print(
        f"\nevaluated {len(result.archive)} networks; "
        f"epochs {result.total_epochs_trained}/{budget} "
        f"({100 * result.total_epochs_saved / budget:.1f}% saved by early termination)"
    )

    print("\nPareto frontier (accuracy vs FLOPs):")
    for point in pareto_frontier(result.archive):
        print(f"  model {point.model_id:3d}: {point.fitness:6.2f}%  {point.flops / 1e6:.3f} MFLOPs")

    best = max(result.archive, key=lambda m: m.fitness)
    print(
        f"\nbest network: model {best.model_id} "
        f"({best.fitness:.2f}% via {'prediction' if best.result.terminated_early else 'measurement'}, "
        f"{best.result.epochs_trained} epochs trained)"
    )
    network = decode_genome(
        best.genome,
        DecoderConfig(dataset.input_shape, 2, channels=(4, 8, 12)),
        rng=np.random.default_rng(0),
    )
    print(render_network(network))


if __name__ == "__main__":
    main()
