#!/usr/bin/env python
"""The Analyzer: explore a published data commons.

Replays the paper's §2.4/§4.5 analysis workflow offline: build (or
reuse) a commons, then query it — learning-curve shapes, termination
statistics, FLOPs/accuracy correlation, structural fingerprints of
successful architectures, and a rendered record trail of one
near-optimal model (the paper's "NN Model 51" figure).

Run:  python examples/analyze_commons.py [commons_dir]
"""

import sys
import tempfile

import numpy as np

from repro.analysis import (
    CommonsQuery,
    ascii_curve,
    bit_frequency_profile,
    describe_curve,
    flops_accuracy_correlation,
    prediction_error_summary,
    sparkline,
    termination_histogram,
)
from repro.experiments import paper_config
from repro.lineage import DataCommons, ProvenanceGraph
from repro.workflow import run_workflow
from repro.xfel import BeamIntensity


def ensure_commons(commons_dir: str) -> DataCommons:
    """Reuse an existing commons or publish one low-intensity run."""
    commons = DataCommons(commons_dir)
    if not commons.run_ids():
        print("empty commons — running one paper-scale low-intensity search...")
        run_workflow(paper_config(BeamIntensity.LOW), commons_path=commons_dir)
    return commons


def main() -> None:
    commons_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="a4nn_commons_")
    commons = ensure_commons(commons_dir)
    run_id = commons.run_ids()[0]
    records = commons.load_models(run_id)
    print(f"analyzing run {run_id!r}: {len(records)} model record trails\n")

    # -- aggregate statistics ------------------------------------------------
    summary = termination_histogram(records, max_epochs=records[0].max_epochs)
    print(
        f"early termination: {summary.percent_terminated:.0f}% of models, "
        f"mean e_t {summary.mean_termination_epoch:.1f}"
    )
    corr = flops_accuracy_correlation(records)
    print(
        f"FLOPs vs accuracy: Spearman rho {corr.rho:+.2f} "
        f"(p={corr.p_value:.3f}, {'significant' if corr.significant else 'not significant'})"
    )
    errors = prediction_error_summary(records)
    print(
        f"prediction quality: mean |pred - measured| {errors.mean_abs_error:.2f}% "
        f"over {errors.n} terminated models\n"
    )

    # -- structural fingerprint ----------------------------------------------
    query = CommonsQuery(records)
    top = query.top_by_fitness(10)
    profile_top = bit_frequency_profile(top)
    profile_all = bit_frequency_profile(records)
    print("genome bit frequency, top-10 models vs all:")
    print("  top-10:", sparkline(profile_top))
    print("  all   :", sparkline(profile_all))
    enriched = int(np.argmax(profile_top - profile_all))
    print(f"  most enriched connection bit in successful models: #{enriched}\n")

    # -- one model's record trail (the paper's 'Model 51' view) ---------------
    best = top[0]
    print(f"record trail of model {best.model_id} (fitness {best.fitness:.2f}%):")
    shape = describe_curve(best.fitness_history)
    print(
        f"  curve: {shape.n_epochs} epochs, gain {shape.total_gain:+.1f}%, "
        f"monotone {100 * shape.monotonicity:.0f}%, plateau at epoch {shape.plateau_epoch}"
    )
    print(ascii_curve(best.fitness_history, height=8))
    if best.prediction_history:
        print("  engine predictions:", sparkline(best.prediction_history))

    # -- provenance graph ------------------------------------------------------
    graph = ProvenanceGraph.from_records(records)
    generations = graph.generations()
    print(
        f"\nprovenance: {len(records)} models across {len(generations)} generations "
        f"({', '.join(str(len(v)) for v in generations.values())} per generation)"
    )


if __name__ == "__main__":
    main()
