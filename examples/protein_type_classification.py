#!/usr/bin/env python
"""Multi-class extension: classifying protein *types*, not just conformations.

The XPSI framework the paper compares against also identifies protein
types from diffraction patterns.  This example builds a three-protein
dataset with :func:`repro.xfel.generate_dataset_from_proteins`, runs a
miniature real-mode A4NN search with a three-way classification head,
and reports what the search finds — demonstrating that nothing in the
workflow is specific to the two-conformation use case.

Run:  python examples/protein_type_classification.py
"""

from repro.analysis import pareto_frontier
from repro.core import EngineConfig, PredictionEngine
from repro.nas import DecoderConfig, NSGANet, NSGANetConfig, TrainingEvaluator
from repro.utils.rng import RngStream
from repro.xfel import (
    BeamIntensity,
    DatasetConfig,
    generate_dataset_from_proteins,
    make_protein,
)


def main() -> None:
    proteins = [make_protein(f"protein_{chr(65 + i)}", seed=500 + i) for i in range(3)]
    print("synthesized proteins:", ", ".join(p.name for p in proteins))

    config = DatasetConfig(
        intensity=BeamIntensity.HIGH, images_per_class=80, image_size=16
    )
    dataset = generate_dataset_from_proteins(proteins, config)
    print(
        f"dataset: {dataset.n_classes} classes, train {dataset.x_train.shape}, "
        f"balance {dataset.class_balance()}"
    )

    max_epochs = 8
    nas_config = NSGANetConfig(
        population_size=4, offspring_per_generation=4, generations=3, max_epochs=max_epochs
    )
    evaluator = TrainingEvaluator(
        dataset,
        PredictionEngine(EngineConfig(e_pred=max_epochs, tolerance=1.0)),
        max_epochs=max_epochs,
        decoder_config=DecoderConfig(dataset.input_shape, dataset.n_classes, (4, 8, 12)),
        rng_stream=RngStream(1).child("eval"),
    )
    result = NSGANet(nas_config, evaluator, rng_stream=RngStream(1).child("search")).run()

    budget = max_epochs * len(result.archive)
    print(
        f"\nevaluated {len(result.archive)} networks, "
        f"epochs {result.total_epochs_trained}/{budget} "
        f"({100 * result.total_epochs_saved / budget:.1f}% saved)"
    )
    print("Pareto frontier (3-way accuracy vs FLOPs):")
    for point in pareto_frontier(result.archive):
        print(
            f"  model {point.model_id:3d}: {point.fitness:6.2f}%  "
            f"{point.flops / 1e6:.3f} MFLOPs"
        )
    chance = 100.0 / dataset.n_classes
    best = result.population.best_fitness()
    print(f"\nbest accuracy {best:.2f}% (chance level {chance:.1f}%)")


if __name__ == "__main__":
    main()
