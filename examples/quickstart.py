#!/usr/bin/env python
"""Quickstart: the A4NN prediction engine on a single learning curve.

The engine's whole job: watch a network's per-epoch validation accuracy,
fit the paper's parametric function F(x) = a - b**(c - x) to the curve,
extrapolate the final (epoch-25) fitness, and stop training once three
successive extrapolations agree within half a percentage point.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import sparkline
from repro.core import EngineConfig, PredictionEngine


def simulated_training_curve(n_epochs: int = 25, seed: int = 0) -> np.ndarray:
    """A realistic noisy learning curve (percent validation accuracy)."""
    rng = np.random.default_rng(seed)
    epochs = np.arange(1, n_epochs + 1)
    curve = 96.5 - (96.5 - 55.0) * np.exp(-0.30 * epochs)
    return np.clip(curve + rng.normal(0, 0.4, n_epochs), 0, 100)


def main() -> None:
    # Table 1 of the paper: F = a - b**(c-x), C_min=3, e_pred=25, N=3, r=0.5
    engine = PredictionEngine(EngineConfig())
    print("engine:", engine.describe())

    curve = simulated_training_curve()
    print("\nfull curve  :", sparkline(curve))

    session = engine.session()
    for epoch, accuracy in enumerate(curve, start=1):
        session.observe(accuracy)
        latest = session.prediction_history[-1] if session.prediction_history else None
        print(
            f"epoch {epoch:2d}: measured {accuracy:6.2f}%"
            + (f"   predicted@25 {latest:6.2f}%" if latest is not None else "")
        )
        if session.converged:
            print(
                f"\n>> converged: training terminated at epoch {epoch} "
                f"({25 - epoch} epochs saved)"
            )
            print(f">> engine's final-fitness prediction: {session.final_fitness:.2f}%")
            print(f">> actual epoch-25 accuracy         : {curve[-1]:.2f}%")
            break
    else:
        print("\n>> predictions never stabilized; the full budget was trained")

    print("\nobserved    :", sparkline(session.fitness_history))
    print("predictions :", sparkline(session.prediction_history))


if __name__ == "__main__":
    main()
