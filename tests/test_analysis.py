"""Tests for the Analyzer subpackage."""

import numpy as np
import pytest

from repro.analysis import (
    CommonsQuery,
    ParetoPoint,
    ascii_curve,
    bit_frequency_profile,
    describe_curve,
    flops_accuracy_correlation,
    frontier_table,
    hypervolume_2d,
    pareto_frontier,
    phase_graph,
    prediction_error_summary,
    records_to_table,
    render_network,
    render_phase,
    sparkline,
    structural_similarity,
    termination_histogram,
)
from repro.lineage.records import ModelRecord
from repro.nas import DecoderConfig, Individual, PhaseGenome, decode_genome, random_genome

from tests.conftest import make_concave_curve


def make_record(model_id, fitness, flops, rng, **kwargs):
    defaults = dict(
        model_id=model_id,
        generation=0,
        genome=random_genome(rng).to_dict(),
        fitness=fitness,
        flops=flops,
        epochs_trained=kwargs.pop("epochs_trained", 25),
        max_epochs=25,
    )
    defaults.update(kwargs)
    return ModelRecord(**defaults)


class TestParetoFrontier:
    def test_dominated_points_excluded(self, rng):
        members = [
            Individual(random_genome(rng), 0, 0, fitness=90.0, flops=100),
            Individual(random_genome(rng), 1, 0, fitness=95.0, flops=200),
            Individual(random_genome(rng), 2, 0, fitness=85.0, flops=150),  # dominated
        ]
        frontier = pareto_frontier(members)
        assert [p.model_id for p in frontier] == [0, 1]

    def test_sorted_by_flops(self, rng):
        members = [
            Individual(random_genome(rng), i, 0, fitness=80.0 + i, flops=1000 - 100 * i)
            for i in range(5)
        ]
        frontier = pareto_frontier(members)
        flops = [p.flops for p in frontier]
        assert flops == sorted(flops)

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_unevaluated_rejected(self, rng):
        with pytest.raises(ValueError):
            pareto_frontier([Individual(random_genome(rng), 0, 0)])

    def test_works_on_model_records(self, rng):
        records = [make_record(i, 90.0 + i, 100 * (i + 1), rng) for i in range(3)]
        frontier = pareto_frontier(records)
        assert frontier[0].model_id == 0

    def test_frontier_table_renders(self, rng):
        members = [Individual(random_genome(rng), 0, 0, fitness=90.0, flops=10**6)]
        text = frontier_table(pareto_frontier(members))
        assert "90.00" in text and "1.00" in text


class TestHypervolume:
    def test_empty_zero(self):
        assert hypervolume_2d([]) == 0.0

    def test_single_point_zero_without_ref(self):
        points = [ParetoPoint(0, 90.0, 100.0)]
        assert hypervolume_2d(points) == 0.0  # ref_flops defaults to max

    def test_monotone_in_accuracy(self):
        base = [ParetoPoint(0, 80.0, 100.0), ParetoPoint(1, 90.0, 200.0)]
        better = [ParetoPoint(0, 85.0, 100.0), ParetoPoint(1, 95.0, 200.0)]
        assert hypervolume_2d(better, ref_flops=300.0) > hypervolume_2d(base, ref_flops=300.0)

    def test_manual_value(self):
        points = [ParetoPoint(0, 10.0, 1.0)]
        # width (5-1) * height (10-0) = 40
        assert hypervolume_2d(points, ref_fitness=0.0, ref_flops=5.0) == pytest.approx(40.0)


class TestCurveShapes:
    def test_clean_concave_curve(self):
        shape = describe_curve(make_concave_curve(20))
        assert shape.monotonicity == 1.0
        assert shape.concave_fraction > 0.9
        assert shape.total_gain > 20
        assert shape.plateau_epoch < 20

    def test_noisy_curve_less_monotone(self):
        clean = describe_curve(make_concave_curve(20))
        noisy = describe_curve(make_concave_curve(20, noise=3.0, seed=1))
        assert noisy.monotonicity < clean.monotonicity
        assert noisy.noise_rms > clean.noise_rms

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            describe_curve([50.0])


class TestTerminationHistogram:
    def test_counts_and_percent(self, rng):
        records = [
            make_record(0, 90.0, 100, rng, terminated_early=True, epochs_trained=10),
            make_record(1, 91.0, 100, rng, terminated_early=True, epochs_trained=10),
            make_record(2, 92.0, 100, rng, terminated_early=False, epochs_trained=25),
        ]
        summary = termination_histogram(records, max_epochs=25)
        assert summary.histogram[9] == 2
        assert summary.histogram.sum() == 2
        assert summary.percent_terminated == pytest.approx(100 * 2 / 3)
        assert summary.mean_termination_epoch == 10.0

    def test_no_terminations_nan_mean(self, rng):
        records = [make_record(0, 90.0, 100, rng, terminated_early=False)]
        summary = termination_histogram(records, max_epochs=25)
        assert np.isnan(summary.mean_termination_epoch)
        assert summary.percent_terminated == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            termination_histogram([], max_epochs=25)

    def test_out_of_range_epoch_rejected(self, rng):
        records = [make_record(0, 9.0, 1, rng, terminated_early=True, epochs_trained=30)]
        with pytest.raises(ValueError):
            termination_histogram(records, max_epochs=25)


class TestQueries:
    def _records(self, rng):
        return [
            make_record(
                i,
                85.0 + i,
                100 * (i + 1),
                rng,
                generation=i // 2,
                terminated_early=(i % 2 == 0),
                epochs_trained=10 if i % 2 == 0 else 25,
                fitness_history=list(make_concave_curve(10)),
            )
            for i in range(6)
        ]

    def test_filters_compose(self, rng):
        query = CommonsQuery(self._records(rng))
        filtered = query.terminated_early().fitness_at_least(87.0)
        assert [r.model_id for r in filtered.records] == [2, 4]

    def test_in_generation(self, rng):
        query = CommonsQuery(self._records(rng))
        assert len(query.in_generation(1)) == 2

    def test_top_by_fitness(self, rng):
        query = CommonsQuery(self._records(rng))
        top = query.top_by_fitness(2)
        assert [r.model_id for r in top] == [5, 4]

    def test_aggregates(self, rng):
        query = CommonsQuery(self._records(rng))
        assert query.mean_fitness() == pytest.approx(87.5)
        assert query.mean_epochs_trained() == pytest.approx((10 * 3 + 25 * 3) / 6)
        assert query.total_epochs_saved() == 3 * 15

    def test_table_rows(self, rng):
        rows = records_to_table(self._records(rng))
        assert len(rows) == 6
        assert rows[0]["mean_accuracy"] is not None
        assert rows[0]["gain_per_epoch"] > 0

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ValueError):
            CommonsQuery([]).mean_fitness()


class TestStats:
    def test_flops_accuracy_correlation_positive(self, rng):
        records = [make_record(i, 80.0 + i, 100 * (i + 1), rng) for i in range(10)]
        result = flops_accuracy_correlation(records)
        assert result.rho == pytest.approx(1.0)
        assert result.significant

    def test_correlation_needs_three(self, rng):
        with pytest.raises(ValueError):
            flops_accuracy_correlation([make_record(0, 80.0, 100, rng)])

    def test_structural_similarity_bounds(self, rng):
        a = make_record(0, 80.0, 100, rng)
        assert structural_similarity(a, a) == 1.0
        b = make_record(1, 81.0, 100, rng)
        assert 0.0 <= structural_similarity(a, b) <= 1.0

    def test_bit_frequency_profile(self, rng):
        records = [make_record(i, 80.0, 100, rng) for i in range(5)]
        profile = bit_frequency_profile(records)
        assert profile.shape == (21,)
        assert np.all((profile >= 0) & (profile <= 1))

    def test_prediction_error_summary(self, rng):
        records = [
            make_record(
                0, 95.0, 100, rng, terminated_early=True, measured_fitness=94.0
            ),
            make_record(
                1, 90.0, 100, rng, terminated_early=True, measured_fitness=92.0
            ),
        ]
        summary = prediction_error_summary(records)
        assert summary.n == 2
        assert summary.mean_abs_error == pytest.approx(1.5)
        assert summary.max_abs_error == pytest.approx(2.0)


class TestViz:
    def test_sparkline_length_and_charset(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert sparkline([5, 5, 5]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_ascii_curve_contains_axis(self):
        plot = ascii_curve(make_concave_curve(20), height=5)
        assert "#" in plot and "epochs" in plot

    def test_render_phase_shows_routing(self):
        phase = PhaseGenome(3, (1, 0, 1, 1))
        text = render_phase(phase)
        assert "node1 <- node0" in text
        assert "skip" in text

    def test_render_network_expands_phases(self, rng):
        net = decode_genome(
            random_genome(rng), DecoderConfig((1, 8, 8), 2, (2, 3, 4)), rng=rng
        )
        text = render_network(net)
        assert "PhaseBlock" in text and "Dense" in text

    def test_phase_graph_structure(self, rng):
        genome = random_genome(rng, n_phases=2, nodes_per_phase=3)
        graph = phase_graph(genome)
        # 2 phases x (3 nodes + in + out)
        assert graph.number_of_nodes() == 2 * 5
        import networkx as nx

        assert nx.is_directed_acyclic_graph(graph)
        # inter-phase pooling edge exists
        assert graph.has_edge("p0out", "p1in")


class TestCompareRuns:
    def _runs(self, rng):
        a4nn = [
            make_record(
                i, 90.0 + i % 5, 100 * (1 + i % 4), rng,
                generation=i // 3, epochs_trained=12, terminated_early=True,
            )
            for i in range(9)
        ]
        baseline = [
            make_record(
                100 + i, 89.0 + i % 5, 100 * (1 + i % 4), rng,
                generation=i // 3, epochs_trained=25,
            )
            for i in range(9)
        ]
        return a4nn, baseline

    def test_epoch_savings_and_best_delta(self, rng):
        from repro.analysis import compare_runs

        a4nn, baseline = self._runs(rng)
        comparison = compare_runs(a4nn, baseline)
        assert comparison.epochs_trained == (9 * 12, 9 * 25)
        assert comparison.epochs_saved_percent == pytest.approx(100 * 13 / 25)
        assert comparison.best_fitness_delta == pytest.approx(1.0)

    def test_generation_means_shape(self, rng):
        from repro.analysis import compare_runs

        a4nn, baseline = self._runs(rng)
        comparison = compare_runs(a4nn, baseline)
        means_a, means_b = comparison.mean_generation_fitness
        assert len(means_a) == 3 and len(means_b) == 3
        assert np.all(means_a >= means_b)

    def test_summary_lines_render(self, rng):
        from repro.analysis import compare_runs

        a4nn, baseline = self._runs(rng)
        lines = compare_runs(a4nn, baseline).summary_lines()
        assert any("epoch savings" in line for line in lines)

    def test_empty_run_rejected(self, rng):
        from repro.analysis import compare_runs

        with pytest.raises(ValueError):
            compare_runs([], [make_record(0, 90.0, 100, rng)])

    def test_hypervolume_ratio_favors_better_frontier(self, rng):
        from repro.analysis import compare_runs

        strong = [make_record(i, 95.0 + i, 100 * (i + 1), rng) for i in range(4)]
        weak = [make_record(10 + i, 85.0 + i, 100 * (i + 1), rng) for i in range(4)]
        comparison = compare_runs(strong, weak)
        assert comparison.hypervolume_ratio > 1.0
