"""Tests for checkpointing and the epoch-wise trainer."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    Trainer,
    architecture_config,
    load_checkpoint,
    load_state_dict,
    network_from_config,
    save_checkpoint,
    state_dict,
)


def bn_net(rng, size=8):
    return Network(
        [
            Conv2D(1, 2, 3, rng=rng),
            BatchNorm2D(2),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(2 * (size // 2) ** 2, 2, rng=rng),
        ],
        input_shape=(1, size, size),
        name="bn-net",
    )


class TestArchitectureConfig:
    def test_round_trip_structure(self, rng):
        net = bn_net(rng)
        rebuilt = network_from_config(architecture_config(net))
        assert [type(l).__name__ for l in rebuilt.layers] == [
            type(l).__name__ for l in net.layers
        ]
        assert rebuilt.input_shape == net.input_shape
        assert rebuilt.name == net.name

    def test_unknown_layer_type_rejected(self):
        with pytest.raises(ValueError, match="unknown layer"):
            network_from_config(
                {"name": "x", "input_shape": None, "layers": [{"type": "Nope", "config": {}}]}
            )


class TestStateDict:
    def test_includes_params_and_bn_state(self, rng):
        net = bn_net(rng)
        state = state_dict(net)
        assert "0.weight" in state and "1.gamma" in state
        assert "1.running_mean" in state and "1.running_var" in state

    def test_strict_load_missing_key(self, rng):
        net = bn_net(rng)
        state = state_dict(net)
        state.pop("0.weight")
        with pytest.raises(KeyError, match="0.weight"):
            load_state_dict(bn_net(rng), state)

    def test_strict_load_extra_key(self, rng):
        net = bn_net(rng)
        state = state_dict(net)
        state["ghost"] = np.zeros(3)
        with pytest.raises(KeyError, match="unused"):
            load_state_dict(bn_net(rng), state)

    def test_shape_mismatch_rejected(self, rng):
        net = bn_net(rng)
        state = state_dict(net)
        state["0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(bn_net(rng), state)


class TestCheckpointRoundTrip:
    def test_predictions_identical_after_reload(self, rng, tmp_path):
        net = bn_net(rng)
        # give batch-norm non-trivial running stats
        x = rng.normal(size=(16, 1, 8, 8))
        net.forward(x, training=True)
        save_checkpoint(net, tmp_path, tag="e1")
        reloaded = load_checkpoint(tmp_path, tag="e1")
        np.testing.assert_allclose(reloaded.predict(x), net.predict(x), atol=1e-12)

    def test_checkpoint_paths_returned(self, rng, tmp_path):
        paths = save_checkpoint(bn_net(rng), tmp_path, tag="t")
        assert paths["architecture"].endswith("t.arch.json")
        assert paths["state"].endswith("t.state.npz")


class TestTrainer:
    def test_learns_separable_problem(self, rng):
        # two Gaussian blobs rendered as images
        n = 40
        x = rng.normal(size=(2 * n, 1, 8, 8)) * 0.1
        x[:n, :, :4, :] += 1.0
        x[n:, :, 4:, :] += 1.0
        y = np.array([0] * n + [1] * n)
        net = bn_net(rng)
        trainer = Trainer(net, x, y, x, y, optimizer=Adam(net, 1e-2), batch_size=8, rng=rng)
        for _ in range(6):
            stats = trainer.train()
        assert trainer.validate() > 90.0
        assert stats.epoch == 6
        assert stats.wall_seconds > 0

    def test_epoch_counter_and_history(self, rng, tiny_dataset):
        net = bn_net(rng, size=16)
        trainer = Trainer(
            net,
            tiny_dataset.x_train,
            tiny_dataset.y_train,
            tiny_dataset.x_test,
            tiny_dataset.y_test,
            rng=rng,
        )
        assert trainer.epoch == 0
        trainer.train()
        trainer.train()
        assert trainer.epoch == 2
        assert len(trainer.history) == 2

    def test_validate_returns_percent(self, rng, tiny_dataset):
        net = bn_net(rng, size=16)
        trainer = Trainer(
            net,
            tiny_dataset.x_train,
            tiny_dataset.y_train,
            tiny_dataset.x_test,
            tiny_dataset.y_test,
            rng=rng,
        )
        fitness = trainer.validate()
        assert 0.0 <= fitness <= 100.0

    def test_rejects_mismatched_splits(self, rng, tiny_dataset):
        with pytest.raises(ValueError, match="train split mismatch"):
            Trainer(
                bn_net(rng),
                tiny_dataset.x_train,
                tiny_dataset.y_train[:-1],
                tiny_dataset.x_test,
                tiny_dataset.y_test,
            )

    def test_rejects_empty_split(self, rng, tiny_dataset):
        with pytest.raises(ValueError, match="non-empty"):
            Trainer(
                bn_net(rng),
                tiny_dataset.x_train[:0],
                tiny_dataset.y_train[:0],
                tiny_dataset.x_test,
                tiny_dataset.y_test,
            )

    def test_deterministic_given_rng(self, tiny_dataset):
        results = []
        for _ in range(2):
            rng = np.random.default_rng(5)
            net = bn_net(np.random.default_rng(7), size=16)
            trainer = Trainer(
                net,
                tiny_dataset.x_train,
                tiny_dataset.y_train,
                tiny_dataset.x_test,
                tiny_dataset.y_test,
                optimizer=Adam(net, 1e-3),
                rng=rng,
            )
            trainer.train()
            results.append(trainer.validate())
        assert results[0] == results[1]
