"""The cross-file rule packs: DET003/004, NUM005/006, CONC001/002."""

import textwrap

from repro.tooling import Linter


def lint(sources: dict) -> list:
    return Linter().lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()}
    ).diagnostics


def rule_hits(diagnostics, rule_id):
    return [d for d in diagnostics if d.rule_id == rule_id]


# -- DET003: RNG flow into the eval path ---------------------------------------


def test_det003_flags_unseeded_rng_reachable_from_evaluator():
    diags = lint({
        "repro/nas/evaluation.py": """
            from repro.support import jitter
            def evaluate(genome):
                return jitter(genome)
        """,
        "repro/support.py": """
            import numpy as np
            def jitter(genome):
                rng = np.random.default_rng()
                return rng.random()
        """,
    })
    hits = rule_hits(diags, "DET003")
    assert len(hits) == 1
    assert hits[0].path == "repro/support.py"
    assert "evaluate" in hits[0].message  # witness chain names the entry
    assert hits[0].related is not None
    assert hits[0].related.path == "repro/nas/evaluation.py"


def test_det003_crosses_duck_typed_method_calls():
    diags = lint({
        "repro/nas/operators.py": """
            def mutate(genome, evaluator):
                return evaluator.evaluate(genome)
        """,
        "repro/engines.py": """
            import numpy as np
            class Engine:
                def evaluate(self, genome):
                    return np.random.rand()
        """,
    })
    assert len(rule_hits(diags, "DET003")) == 1


def test_det003_clean_when_rng_is_seeded_or_unreachable():
    diags = lint({
        "repro/nas/evaluation.py": """
            from repro.support import jitter
            def evaluate(genome):
                return jitter(genome)
        """,
        "repro/support.py": """
            import numpy as np
            def jitter(genome):
                return np.random.default_rng(42).random()
        """,
        "repro/unrelated.py": """
            import numpy as np
            def elsewhere():
                return np.random.default_rng()
        """,
    })
    assert rule_hits(diags, "DET003") == []


# -- DET004: module-level RNG objects ------------------------------------------


def test_det004_flags_module_level_rng_even_seeded():
    diags = lint({"repro/workflow/state.py": """
        import numpy as np
        RNG = np.random.default_rng(42)
    """})
    assert len(rule_hits(diags, "DET004")) == 1


def test_det004_flags_global_rebind_from_function():
    diags = lint({"repro/workflow/state.py": """
        import numpy as np
        _rng = None
        def setup(seed):
            global _rng
            _rng = np.random.default_rng(seed)
    """})
    assert len(rule_hits(diags, "DET004")) == 1


def test_det004_allows_function_local_and_rng_module():
    diags = lint({
        "repro/utils/rng.py": """
            import numpy as np
            _GLOBAL = np.random.default_rng(0)
        """,
        "repro/workflow/ok.py": """
            import numpy as np
            def fresh(seed):
                return np.random.default_rng(seed)
        """,
    })
    assert rule_hits(diags, "DET004") == []


# -- NUM005: dtype-unannotated allocations on the nn hot path ------------------


def test_num005_flags_bare_allocation_in_reachable_helper():
    diags = lint({
        "repro/nn/network.py": """
            from repro.shapes import blank
            def forward(x):
                return blank(x)
        """,
        "repro/shapes.py": """
            import numpy as np
            def blank(x):
                return np.zeros(x.shape)
        """,
    })
    hits = rule_hits(diags, "NUM005")
    assert len(hits) == 1
    assert hits[0].path == "repro/shapes.py"
    assert hits[0].related is not None  # points back at the nn entry point


def test_num005_exempts_dtype_kwarg_astype_and_unreachable_code():
    diags = lint({
        "repro/nn/network.py": """
            import numpy as np
            from repro.shapes import ok_a, ok_b
            def forward(x, dtype):
                buf = np.zeros(x.shape, dtype=dtype)
                return ok_a(buf) + ok_b(buf)
        """,
        "repro/shapes.py": """
            import numpy as np
            def ok_a(x):
                return np.ones(x.shape).astype(x.dtype)
            def ok_b(x):
                return np.full(x.shape, 2.0, dtype=x.dtype)
        """,
        "repro/baselines/other.py": """
            import numpy as np
            def unreached(n):
                return np.zeros(n)
        """,
    })
    assert rule_hits(diags, "NUM005") == []


def test_num005_attaches_autofix_when_dtype_in_scope():
    diags = lint({
        "repro/nn/network.py": """
            import numpy as np
            def forward(n, dtype):
                return np.zeros(n)
        """,
    })
    hits = rule_hits(diags, "NUM005")
    assert len(hits) == 1
    assert hits[0].fix is not None
    assert hits[0].fix.replacement == ", dtype=dtype"


# -- NUM006: float64 producers in training loops -------------------------------


def test_num006_flags_f64_draw_inside_trainer_loop():
    diags = lint({"repro/nn/trainer.py": """
        import numpy as np
        def fit(rng, steps):
            total = np.float32(0)
            for _ in range(steps):
                noise = rng.normal(0.0, 1.0)
                grid = np.linspace(0, 1, 8)
                total = total + noise + grid.sum()
            return total
    """})
    assert len(rule_hits(diags, "NUM006")) == 2


def test_num006_allows_dtype_astype_and_outside_loops():
    diags = lint({"repro/nn/trainer.py": """
        import numpy as np
        def fit(rng, steps, dtype):
            setup = rng.normal(0.0, 1.0)
            for _ in range(steps):
                a = rng.normal(0.0, 1.0, size=3).astype(dtype)
                b = np.linspace(0, 1, 8, dtype=dtype)
        """})
    assert rule_hits(diags, "NUM006") == []


# -- CONC001: module state written below a worker entry ------------------------


def test_conc001_flags_reachable_module_container_write():
    diags = lint({
        "repro/scheduler/procpool.py": """
            from repro.registry import remember
            def _worker_main(conn, spec):
                remember(spec)
        """,
        "repro/registry.py": """
            _SEEN = {}
            def remember(spec):
                _SEEN[spec.seed] = spec
        """,
    })
    hits = rule_hits(diags, "CONC001")
    assert len(hits) == 1
    assert hits[0].path == "repro/registry.py"
    assert "worker entry" in hits[0].message


def test_conc001_flags_global_rebind_and_mutator_methods():
    diags = lint({
        "repro/xfel/shm.py": """
            _CACHE = []
            _TOTAL = 0
            def attach(block):
                global _TOTAL
                _TOTAL = _TOTAL + 1
                _CACHE.append(block)
        """,
    })
    assert len(rule_hits(diags, "CONC001")) == 2


def test_conc001_clean_for_local_state_and_non_worker_modules():
    diags = lint({
        "repro/scheduler/procpool.py": """
            def _worker_main(conn, spec):
                seen = {}
                seen[spec.seed] = spec
                return seen
        """,
        "repro/analysis.py": """
            _MEMO = {}
            def cache_result(key, value):
                _MEMO[key] = value
        """,
    })
    assert rule_hits(diags, "CONC001") == []


# -- CONC002: non-picklable flows into EvalSpec --------------------------------


_SPEC_MODULE = """
    class EvalSpec:
        def __init__(self, **kw):
            pass
    def _worker_main(conn, spec):
        pass
"""


def test_conc002_flags_lambda_through_assignment():
    diags = lint({
        "repro/scheduler/procpool.py": _SPEC_MODULE,
        "repro/workflow/build.py": """
            from repro.scheduler.procpool import EvalSpec
            def make(config):
                factory = lambda: config
                return EvalSpec(mode="real", factory=factory)
        """,
    })
    hits = rule_hits(diags, "CONC002")
    assert len(hits) == 1
    assert "lambda" in hits[0].message
    assert hits[0].related is not None  # the EvalSpec construction site


def test_conc002_sees_through_kwargs_dicts():
    diags = lint({
        "repro/scheduler/procpool.py": _SPEC_MODULE,
        "repro/workflow/build.py": """
            import threading
            from repro.scheduler.procpool import EvalSpec
            def make(config):
                kw = dict(mode="real", lock=threading.Lock())
                return EvalSpec(**kw)
        """,
    })
    hits = rule_hits(diags, "CONC002")
    assert len(hits) == 1
    assert "lock" in hits[0].message


def test_conc002_flags_rng_objects_as_contract_breaking():
    diags = lint({
        "repro/scheduler/procpool.py": _SPEC_MODULE,
        "repro/workflow/build.py": """
            import numpy as np
            from repro.scheduler.procpool import EvalSpec
            def make(seed):
                return EvalSpec(mode="real", rng=np.random.default_rng(seed))
        """,
    })
    hits = rule_hits(diags, "CONC002")
    assert len(hits) == 1
    assert "re-derive" in hits[0].message


def test_conc002_clean_for_picklable_values():
    diags = lint({
        "repro/scheduler/procpool.py": _SPEC_MODULE,
        "repro/workflow/build.py": """
            from repro.scheduler.procpool import EvalSpec
            def build_net():
                pass
            def make(config):
                kw = dict(mode="real", seed=7)
                kw.update(batch_size=32)
                return EvalSpec(factory=build_net, **kw)
        """,
    })
    assert rule_hits(diags, "CONC002") == []
