"""Tests for deterministic RNG stream derivation."""

import numpy as np
import pytest

from repro.utils.rng import RngStream, derive_rng, spawn_seeds, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_distinct_inputs_distinct_hashes(self):
        values = {stable_hash("stream", i) for i in range(200)}
        assert len(values) == 200

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")


class TestDeriveRng:
    def test_same_stream_same_draws(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_differ(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(8, "x").random(5)
        assert not np.array_equal(a, b)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = spawn_seeds(3, 10, "models")
        assert len(seeds) == 10
        assert seeds == spawn_seeds(3, 10, "models")

    def test_all_distinct(self):
        seeds = spawn_seeds(3, 100, "models")
        assert len(set(seeds)) == 100


class TestRngStream:
    def test_child_extends_path(self):
        stream = RngStream(1)
        child = stream.child("nas", 3)
        assert child.path == ("nas", 3)
        grandchild = child.child("mutation")
        assert grandchild.path == ("nas", 3, "mutation")

    def test_generator_deterministic(self):
        s = RngStream(9).child("a")
        x = s.generator("g").random(3)
        y = s.generator("g").random(3)
        np.testing.assert_array_equal(x, y)

    def test_sibling_streams_independent(self):
        s = RngStream(9)
        a = s.child("a").generator().random(4)
        b = s.child("b").generator().random(4)
        assert not np.array_equal(a, b)

    def test_seeds_helper(self):
        s = RngStream(9)
        seeds = s.seeds(5, "init")
        assert len(seeds) == 5 and len(set(seeds)) == 5
