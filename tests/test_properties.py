"""Hypothesis property tests on core invariants across subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import pareto_frontier
from repro.core.analyzer import ConvergenceAnalyzer
from repro.core.fitting import fit_curve
from repro.core.parametric import get_function
from repro.nas.genome import Genome, n_connection_bits
from repro.nas.operators import bitflip_mutation, uniform_crossover
from repro.nas.population import Individual
from repro.scheduler.fifo import Job, schedule_run
from repro.utils.rng import derive_rng
from repro.xfel.noise import normalize_patterns

# -- strategies ---------------------------------------------------------------

bit_layouts = st.tuples(st.integers(2, 5), st.integers(1, 4))  # (nodes, phases)


@st.composite
def genomes(draw):
    nodes, phases = draw(bit_layouts)
    width = (n_connection_bits(nodes) + 1) * phases
    bits = draw(st.lists(st.integers(0, 1), min_size=width, max_size=width))
    return Genome.from_bits(bits, (nodes,) * phases)


curves = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=3, max_size=30
)


class TestGenomeProperties:
    @given(genomes())
    @settings(max_examples=80, deadline=None)
    def test_bits_round_trip(self, genome):
        assert Genome.from_bits(genome.to_bits(), genome.nodes_per_phase) == genome
        assert Genome.from_dict(genome.to_dict()) == genome

    @given(genomes(), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_mutation_preserves_layout(self, genome, seed):
        rng = derive_rng(seed, "mut")
        mutated = bitflip_mutation(genome, rng, rate=0.5)
        assert mutated.nodes_per_phase == genome.nodes_per_phase
        assert len(mutated.to_bits()) == len(genome.to_bits())

    @given(genomes(), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_crossover_conserves_multiset_per_locus(self, genome, seed):
        rng = derive_rng(seed, "xov")
        other = bitflip_mutation(genome, rng, rate=0.5)
        child_a, child_b = uniform_crossover(genome, other, rng)
        for ca, cb, pa, pb in zip(
            child_a.to_bits(), child_b.to_bits(), genome.to_bits(), other.to_bits()
        ):
            assert sorted((ca, cb)) == sorted((pa, pb))


class TestAnalyzerProperties:
    @given(curves)
    @settings(max_examples=80, deadline=None)
    def test_verdict_depends_only_on_window(self, history):
        analyzer = ConvergenceAnalyzer()
        full = analyzer(history)
        windowed = analyzer(history[-analyzer.n_predictions :])
        assert full == windowed

    @given(curves, st.floats(0.01, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_looser_tolerance_never_unconverges(self, history, tolerance):
        strict = ConvergenceAnalyzer(tolerance=tolerance)
        loose = ConvergenceAnalyzer(tolerance=tolerance * 2)
        if strict(history):
            assert loose(history)


class TestFittingProperties:
    @given(
        st.floats(60.0, 99.0),
        st.floats(30.0, 55.0),
        st.floats(0.1, 0.8),
        st.integers(5, 25),
    )
    @settings(max_examples=40, deadline=None)
    def test_noise_free_round_trip(self, asymptote, start, rate, n):
        fn = get_function("exp3")
        x = np.arange(1, n + 1, dtype=float)
        y = asymptote - (asymptote - start) * np.exp(-rate * x)
        fit = fit_curve(fn, x, y)
        assert fit is not None
        # fitted curve reproduces the observations
        assert fit.rmse < 0.5

    @given(curves)
    @settings(max_examples=60, deadline=None)
    def test_fit_never_crashes_on_valid_fitness(self, history):
        fn = get_function("exp3")
        fit = fit_curve(fn, np.arange(1, len(history) + 1), history)
        if fit is not None:
            assert np.all(np.isfinite(fit.theta))


class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False), st.integers(1, 10**6)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_frontier_members_mutually_non_dominated(self, metrics):
        members = [
            Individual(None, i, 0, fitness=f, flops=c)  # genome unused here
            for i, (f, c) in enumerate(metrics)
        ]
        frontier = pareto_frontier(members)
        assert frontier  # never empty for non-empty input
        for p in frontier:
            for q in frontier:
                if p is q:
                    continue
                assert not (
                    q.fitness >= p.fitness
                    and q.flops <= p.flops
                    and (q.fitness > p.fitness or q.flops < p.flops)
                )
        # every non-frontier member is dominated by someone on the frontier
        frontier_ids = {p.model_id for p in frontier}
        for m in members:
            if m.model_id in frontier_ids:
                continue
            assert any(
                p.fitness >= m.fitness
                and p.flops <= m.flops
                and (p.fitness > m.fitness or p.flops < m.flops)
                for p in frontier
            )


class TestSchedulerProperties:
    @given(
        st.lists(
            st.lists(
                st.lists(st.floats(0.1, 50.0), min_size=1, max_size=5),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=4,
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_conservation_and_bounds(self, spec, n_gpus):
        generations = [
            [Job(g * 100 + i, tuple(durations)) for i, durations in enumerate(gen)]
            for g, gen in enumerate(spec)
        ]
        total = sum(j.duration for gen in generations for j in gen)
        result = schedule_run(generations, n_gpus)
        assert result.busy_seconds == pytest.approx(total)
        # makespan bounded below by critical path and above by serial time
        longest_per_gen = sum(max(j.duration for j in gen) for gen in generations)
        assert result.makespan >= max(total / n_gpus, longest_per_gen) - 1e-6
        assert result.makespan <= total + 1e-6
        # placements never overlap on a GPU
        by_gpu = {}
        for p in result.placements:
            by_gpu.setdefault(p.gpu, []).append((p.start, p.finish))
        for intervals in by_gpu.values():
            intervals.sort()
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-9


class TestNoiseProperties:
    @given(
        st.integers(1, 4),
        st.integers(4, 12),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_normalization_invariants(self, n, size, seed):
        rng = derive_rng(seed, "noise-prop")
        counts = rng.poisson(3.0, size=(n, size, size)).astype(float)
        # guarantee per-image variance so std is finite
        counts[:, 0, 0] += 50.0
        normed = normalize_patterns(counts)
        assert normed.shape == counts.shape
        np.testing.assert_allclose(normed.mean(axis=(1, 2)), 0.0, atol=1e-8)
        np.testing.assert_allclose(normed.std(axis=(1, 2)), 1.0, atol=1e-6)
