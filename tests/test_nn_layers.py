"""Behavioural tests for individual layers (shapes, modes, errors)."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    Sigmoid,
    col2im,
    im2col,
)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(8, 3, rng=rng)
        assert layer.forward(rng.normal(size=(5, 8))).shape == (5, 3)
        assert layer.output_shape((8,)) == (3,)

    def test_rejects_wrong_width(self, rng):
        layer = Dense(8, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 7)))
        with pytest.raises(ValueError):
            layer.output_shape((7,))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(4, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(3, 2)))

    def test_eval_forward_does_not_cache(self, rng):
        layer = Dense(4, 2, rng=rng)
        layer.forward(rng.normal(size=(3, 4)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(3, 2)))

    def test_parameter_count(self, rng):
        assert Dense(4, 3, rng=rng).n_parameters() == 4 * 3 + 3
        assert Dense(4, 3, use_bias=False, rng=rng).n_parameters() == 12


class TestConv2D:
    def test_same_padding_preserves_spatial(self, rng):
        layer = Conv2D(2, 4, kernel_size=3, rng=rng)
        out = layer.forward(rng.normal(size=(3, 2, 8, 8)))
        assert out.shape == (3, 4, 8, 8)

    def test_stride_halves(self, rng):
        layer = Conv2D(1, 2, kernel_size=3, stride=2, padding=1, rng=rng)
        assert layer.output_shape((1, 8, 8)) == (2, 4, 4)

    def test_matches_naive_convolution(self, rng):
        layer = Conv2D(1, 1, kernel_size=3, padding=0, use_bias=False, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        kernel = layer.params["weight"].value[0, 0]
        out = layer.forward(x)
        naive = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                naive[i, j] = np.sum(x[0, 0, i : i + 3, j : j + 3] * kernel)
        np.testing.assert_allclose(out[0, 0], naive, atol=1e-12)

    def test_empty_output_rejected(self, rng):
        layer = Conv2D(1, 1, kernel_size=5, padding=0, rng=rng)
        with pytest.raises(ValueError, match="empty output"):
            layer.output_shape((1, 3, 3))

    def test_wrong_channels_rejected(self, rng):
        layer = Conv2D(2, 1, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 3, 8, 8)))

    def test_same_padding_even_kernel_preserves_spatial(self, rng):
        # even kernels need asymmetric ((k-1)//2, k//2) padding; the old
        # symmetric k//2 padding grew the output by one in each dim
        for k in (2, 4):
            layer = Conv2D(1, 1, kernel_size=k, rng=rng)
            assert layer.output_shape((1, 8, 8)) == (1, 8, 8)
            out = layer.forward(rng.normal(size=(2, 1, 8, 8)))
            assert out.shape == (2, 1, 8, 8)

    def test_same_padding_rejects_stride(self, rng):
        with pytest.raises(ValueError, match="undefined for stride"):
            Conv2D(1, 1, kernel_size=3, stride=2, padding="same", rng=rng)

    def test_unknown_padding_mode_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown padding mode"):
            Conv2D(1, 1, padding="valid", rng=rng)

    def test_tuple_padding_and_config_roundtrip(self, rng):
        layer = Conv2D(1, 1, kernel_size=4, padding=(1, 2), rng=rng)
        assert layer.output_shape((1, 8, 8)) == (1, 8, 8)
        config = layer.get_config()
        assert config["padding"] == [1, 2]
        rebuilt = Conv2D(**{**config, "padding": tuple(config["padding"])}, rng=rng)
        assert rebuilt.output_shape((1, 8, 8)) == (1, 8, 8)

    def test_asymmetric_padding_gradient(self, rng):
        # numeric gradcheck through the asymmetric 'same' path
        layer = Conv2D(1, 1, kernel_size=2, use_bias=False, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        out = layer.forward(x, training=True)
        grad_out = rng.normal(size=out.shape)
        grad_x = layer.backward(grad_out)
        assert grad_x.shape == x.shape
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 0, 2, 3), (0, 0, 4, 4)]:
            x_plus, x_minus = x.copy(), x.copy()
            x_plus[idx] += eps
            x_minus[idx] -= eps
            numeric = (
                np.sum(layer.forward(x_plus) * grad_out)
                - np.sum(layer.forward(x_minus) * grad_out)
            ) / (2 * eps)
            assert grad_x[idx] == pytest.approx(numeric, rel=1e-5, abs=1e-8)

    def test_im2col_col2im_adjoint(self, rng):
        # <im2col(x), y> == <x, col2im(y)> (adjointness)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, 3, 3, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3, 3, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avgpool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = GlobalAvgPool2D().forward(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_maxpool_gradient_routing(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer = MaxPool2D(2)
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        for i, j in [(1, 1), (1, 3), (3, 1), (3, 3)]:
            expected[i, j] = 1.0
        np.testing.assert_array_equal(grad[0, 0], expected)

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestBatchNorm:
    def test_training_normalizes_batch(self, rng):
        layer = BatchNorm2D(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(16, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert abs(out.mean()) < 1e-8
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_running_stats_track_batches(self, rng):
        layer = BatchNorm2D(2, momentum=0.5)
        x = rng.normal(loc=2.0, size=(32, 2, 3, 3))
        for _ in range(20):
            layer.forward(x, training=True)
        assert layer.running_mean == pytest.approx(x.mean(axis=(0, 2, 3)), abs=0.05)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2D(2)
        x = rng.normal(size=(8, 2, 3, 3))
        out_before = layer.forward(x, training=False)
        # fresh running stats are (0, 1): eval output ~= gamma*x + beta = x
        np.testing.assert_allclose(out_before, x, atol=1e-2)

    def test_state_round_trip(self, rng):
        layer = BatchNorm2D(3)
        layer.forward(rng.normal(size=(8, 3, 2, 2)), training=True)
        state = layer.state()
        fresh = BatchNorm2D(3)
        fresh.load_state(state)
        np.testing.assert_array_equal(fresh.running_mean, layer.running_mean)
        np.testing.assert_array_equal(fresh.running_var, layer.running_var)

    def test_load_state_validates(self):
        layer = BatchNorm2D(3)
        with pytest.raises(KeyError):
            layer.load_state({"running_mean": np.zeros(3)})
        with pytest.raises(ValueError):
            layer.load_state(
                {"running_mean": np.zeros(2), "running_var": np.ones(2)}
            )


class TestDropout:
    def test_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = layer.forward(x, training=True)
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling 1/(1-0.5)
        assert 0.4 < (out != 0).mean() < 0.6

    def test_rate_zero_passthrough(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = rng.normal(size=(3, 5))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_expectation_preserved(self):
        layer = Dropout(0.3, rng=np.random.default_rng(1))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestElementwise:
    def test_relu_clamps(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_sigmoid_stable_at_extremes(self):
        out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.5, 1.0]], atol=1e-12)

    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)
