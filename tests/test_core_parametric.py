"""Tests for the parametric learning-curve function library."""

import numpy as np
import pytest

from repro.core.parametric import (
    FUNCTION_REGISTRY,
    ParametricFunction,
    exp3,
    get_function,
    register_function,
)


class TestRegistry:
    def test_paper_function_registered(self):
        fn = get_function("exp3")
        assert fn.formula == "a - b**(c - x)"
        assert fn.n_params == 3

    def test_all_expected_families_present(self):
        expected = {"exp3", "pow3", "log2", "vapor_pressure", "mmf", "janoschek", "weibull", "ilog2"}
        assert expected <= set(FUNCTION_REGISTRY)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="exp3"):
            get_function("nope")

    def test_register_overwrites(self):
        custom = ParametricFunction(
            name="exp3",
            formula="a - b**(c - x)",
            n_params=3,
            fn=exp3.fn,
            initial_guess=exp3.initial_guess,
            lower=exp3.lower,
            upper=exp3.upper,
        )
        try:
            assert register_function(custom) is custom
            assert get_function("exp3") is custom
        finally:
            register_function(exp3)


class TestExp3:
    def test_monotone_increasing_for_b_above_one(self):
        x = np.arange(1, 26, dtype=float)
        y = exp3(x, 95.0, 1.5, 2.0)
        assert np.all(np.diff(y) > 0)

    def test_approaches_asymptote(self):
        assert exp3(1000.0, 95.0, 1.5, 2.0) == pytest.approx(95.0, abs=1e-6)

    def test_no_overflow_on_extreme_params(self):
        y = exp3(np.array([1.0, 25.0]), 95.0, 99.0, 100.0)
        assert np.all(np.isfinite(y))

    def test_wrong_arity_raises(self):
        with pytest.raises(TypeError, match="3 parameters"):
            exp3(1.0, 95.0, 1.5)


class TestAllFamilies:
    @pytest.mark.parametrize("name", sorted(FUNCTION_REGISTRY))
    def test_finite_on_typical_domain(self, name):
        fn = FUNCTION_REGISTRY[name]
        x = np.arange(1, 26, dtype=float)
        y_obs = 90.0 - 35.0 * np.exp(-0.3 * x)
        theta = fn.guess(x, y_obs)
        assert len(theta) == fn.n_params
        y = fn(x, *theta)
        assert y.shape == x.shape
        assert np.all(np.isfinite(y))

    @pytest.mark.parametrize("name", sorted(FUNCTION_REGISTRY))
    def test_guess_within_bounds(self, name):
        fn = FUNCTION_REGISTRY[name]
        x = np.arange(1, 6, dtype=float)
        y = np.array([50.0, 60.0, 66.0, 70.0, 72.0])
        theta = np.asarray(fn.guess(x, y))
        assert np.all(theta >= np.asarray(fn.lower))
        assert np.all(theta <= np.asarray(fn.upper))

    @pytest.mark.parametrize("name", sorted(FUNCTION_REGISTRY))
    def test_guess_handles_short_history(self, name):
        fn = FUNCTION_REGISTRY[name]
        theta = fn.guess([1.0], [52.0])
        assert len(theta) == fn.n_params
        assert np.all(np.isfinite(theta))
