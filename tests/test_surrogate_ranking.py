"""Surrogate pre-ranking: featurization, predictor, allocator, determinism.

Covers the cross-architecture fitness predictor (DESIGN §14): the
deterministic genome featurization, the prefix-addressable online ridge
model, the dominance-aware budget allocator, and the end-to-end
guarantees — ``--surrogate off`` byte-identical to the pre-predictor
baseline, surrogate-on runs bit-identical across backends and evolution
modes, and resume rebuilding the exact predictor state.
"""

import json
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import skip_report, training_matrix
from repro.core.engine import EngineConfig
from repro.core.fitting import ridge_lstsq
from repro.lineage import DataCommons
from repro.nas.genome import Genome, PhaseGenome
from repro.nas.population import Individual
from repro.nas.search import NSGANetConfig
from repro.nas.surrogate import (
    SKIP_EXPLORE,
    SKIP_PROBE,
    BudgetAllocator,
    FitnessPredictor,
    SurrogateConfig,
    genome_feature_names,
    genome_features,
    phase_depth,
)
from repro.scheduler.simulator import simulate_walltime
from repro.utils.validation import ValidationError
from repro.workflow import resume_workflow, run_workflow
from repro.workflow.interfaces import WorkflowConfig

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: ModelRecord fields added with the surrogate allocator; absent from the
#: pre-predictor baseline fixture and required to be null in off mode.
PREDICTOR_KEYS = (
    "predicted_fitness",
    "predicted_rank",
    "budget_assigned",
    "skip_reason",
)


# ---------------------------------------------------------------------------
# featurization
# ---------------------------------------------------------------------------


def genome_from_bits(bits, nodes=(2, 2, 2)) -> Genome:
    return Genome.from_bits(bits, nodes)


class TestFeaturization:
    def test_feature_names_match_row_length(self):
        genome = genome_from_bits((1, 0, 0, 1, 1, 1))
        names = genome_feature_names(genome.nodes_per_phase)
        row = genome_features(genome, 1e6)
        assert len(names) == len(row)
        assert names[0] == "bias" and row[0] == 1.0
        assert names[-1] == "log10_flops"

    def test_phase_depth_chain_vs_parallel(self):
        # 3 nodes: connection bits (0,1), (0,2), (1,2) then skip
        chain = PhaseGenome(3, (1, 0, 1, 0))  # 0 -> 1 -> 2
        parallel = PhaseGenome(3, (0, 0, 0, 0))  # no edges: all depth 1
        fan = PhaseGenome(3, (1, 1, 0, 0))  # 0 -> {1, 2}
        assert phase_depth(chain) == 3
        assert phase_depth(parallel) == 1
        assert phase_depth(fan) == 2

    def test_features_are_pure_structure_plus_flops(self):
        genome = genome_from_bits((1, 1, 0, 0, 1, 0))
        row = genome_features(genome, 10**6 - 1)
        # bias, 3 phases x (connections, skip, depth), totals, density, flops
        assert row[1:4] == (1.0, 1.0, 2.0)  # phase 0: edge + skip, depth 2
        assert row[4:7] == (0.0, 0.0, 1.0)  # phase 1 empty
        assert row[7:10] == (1.0, 0.0, 2.0)  # phase 2: edge, no skip
        assert row[10] == 2.0 and row[11] == 1.0  # totals
        assert row[-1] == pytest.approx(6.0)


# ---------------------------------------------------------------------------
# predictor
# ---------------------------------------------------------------------------


class TestFitnessPredictor:
    def test_prefix_addressing_ignores_later_commits(self):
        predictor = FitnessPredictor(ridge=1e-6, sigma_floor=0.0)
        for i in range(6):
            predictor.observe((1.0, float(i)), 2.0 * i + 1.0, commit_count=i + 1)
        # an outlier landing later must not affect predictions "as of" 6
        predictor.observe((1.0, 50.0), -1000.0, commit_count=7)
        reference = FitnessPredictor(ridge=1e-6, sigma_floor=0.0)
        for i in range(6):
            reference.observe((1.0, float(i)), 2.0 * i + 1.0, commit_count=i + 1)
        assert predictor.visible_rows(6) == 6
        assert predictor.predict((1.0, 3.0), 6) == reference.predict((1.0, 3.0), 6)
        full = predictor.predict((1.0, 3.0), None)
        assert full != predictor.predict((1.0, 3.0), 6)

    def test_out_of_order_commit_rejected(self):
        predictor = FitnessPredictor()
        predictor.observe((1.0,), 1.0, commit_count=5)
        with pytest.raises(ValueError, match="commit order"):
            predictor.observe((1.0,), 2.0, commit_count=4)

    def test_no_visible_observations_gives_none(self):
        predictor = FitnessPredictor()
        predictor.observe((1.0, 2.0), 3.0, commit_count=10)
        assert predictor.predict((1.0, 2.0), 9) is None
        assert predictor.predict((1.0, 2.0), 10) is not None

    def test_sigma_floor_and_leverage_inflation(self):
        predictor = FitnessPredictor(ridge=1e-6, sigma_floor=0.25)
        rng = np.random.default_rng(3)
        for i in range(40):
            x = float(rng.uniform(0.0, 1.0))
            predictor.observe((1.0, x), 10.0 + 2.0 * x + rng.normal(0, 0.5), i + 1)
        _, sigma_in = predictor.predict((1.0, 0.5), 40)
        _, sigma_out = predictor.predict((1.0, 25.0), 40)
        assert sigma_in >= 0.25
        # extrapolated point carries much larger predictive uncertainty
        assert sigma_out > 3.0 * sigma_in

    def test_fingerprint_tracks_observation_log(self):
        a, b = FitnessPredictor(), FitnessPredictor()
        for p in (a, b):
            p.observe((1.0, 2.0), 3.0, 1)
        assert a.fingerprint() == b.fingerprint()
        a.observe((1.0, 4.0), 5.0, 2)
        assert a.fingerprint() != b.fingerprint()


class TestRidgeLeverage:
    def test_leverage_defines_predictive_scale(self):
        rng = np.random.default_rng(0)
        x = np.column_stack([np.ones(30), rng.uniform(0, 1, 30)])
        y = 4.0 + 3.0 * x[:, 1]
        fit = ridge_lstsq(x.tolist(), y.tolist(), ridge=1e-9)
        assert fit.predict([1.0, 0.5]) == pytest.approx(5.5, abs=1e-6)
        inside = fit.leverage([1.0, 0.5])
        outside = fit.leverage([1.0, 100.0])
        assert 0.0 < inside < outside


# ---------------------------------------------------------------------------
# allocator
# ---------------------------------------------------------------------------


def flops_of(genome: Genome) -> int:
    return 10_000 + 1_000 * genome.n_connections + 100 * genome.n_skips


def fitness_of(genome: Genome) -> float:
    return 50.0 + 6.0 * genome.n_connections + 3.0 * genome.n_skips


def trained_allocator(settings: SurrogateConfig, n_rows: int) -> BudgetAllocator:
    """Allocator whose predictor saw ``n_rows`` noise-free outcomes."""
    allocator = BudgetAllocator(settings, max_epochs=8, flops_fn=flops_of)
    rng = np.random.default_rng(7)
    for i in range(n_rows):
        bits = tuple(int(b) for b in rng.integers(0, 2, size=6))
        genome = genome_from_bits(bits)
        allocator.predictor.observe(
            genome_features(genome, flops_of(genome)), fitness_of(genome), i + 1
        )
        allocator.n_commits = i + 1
    return allocator


def candidate(bits=(0, 0, 0, 0, 0, 0), model_id=99) -> Individual:
    return Individual(genome=genome_from_bits(bits), model_id=model_id, generation=1)


def member(fitness: float, flops: int) -> SimpleNamespace:
    return SimpleNamespace(fitness=fitness, flops=flops, quarantined=False)


class TestSurrogateConfig:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("probe_epochs", -1),
            ("min_records", 0),
            ("explore_every", 0),
            ("band", -0.5),
            ("min_dominators", 0),
            ("ridge", -1e-3),
            ("sigma_floor", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValidationError):
            SurrogateConfig(**{field: value})

    def test_roundtrip(self):
        config = SurrogateConfig(probe_epochs=0, band=1.5, explore_every=9)
        assert SurrogateConfig.from_dict(config.to_dict()) == config


class TestBudgetAllocator:
    def test_underdetermined_fit_never_scores(self):
        # 14 features for (2, 2, 2) genomes: the gate requires 16 rows
        # even though min_records is far lower
        settings = SurrogateConfig(min_records=1, band=0.0)
        allocator = trained_allocator(settings, n_rows=15)
        individual = candidate()
        allocator.score(individual, [member(99.0, 1.0)], n_committed=15)
        assert individual.predicted_fitness is None
        assert individual.budget_assigned is None
        assert allocator.n_scored == 0

    def test_dominated_candidate_probed(self):
        settings = SurrogateConfig(min_records=1, band=0.0, probe_epochs=1)
        allocator = trained_allocator(settings, n_rows=30)
        weak = candidate(bits=(0, 0, 0, 0, 0, 0))  # predicted ~50
        pool = [member(95.0, flops_of(weak.genome) - 1)]
        allocator.score(weak, pool, n_committed=30)
        assert weak.predicted_fitness == pytest.approx(50.0, abs=1.0)
        assert weak.skip_reason == SKIP_PROBE
        assert weak.budget_assigned == 1
        assert weak.predicted_rank == 2

    def test_undominated_candidate_keeps_full_budget(self):
        settings = SurrogateConfig(min_records=1, band=0.0)
        allocator = trained_allocator(settings, n_rows=30)
        strong = candidate(bits=(1, 1, 1, 1, 1, 1))  # predicted ~77, top rank
        allocator.score(strong, [member(60.0, 5_000)], n_committed=30)
        assert strong.predicted_fitness is not None
        assert strong.predicted_rank == 1
        assert strong.budget_assigned is None and strong.skip_reason is None

    def test_band_widens_the_benefit_of_the_doubt(self):
        # dominator sits 5 points above the prediction: a wide band keeps
        # the candidate optimistic enough to escape the skip
        allocator = trained_allocator(SurrogateConfig(min_records=1, band=100.0), 30)
        weak = candidate()
        allocator.score(weak, [member(55.0, 1.0)], n_committed=30)
        assert weak.skip_reason is None and weak.budget_assigned is None

    def test_exploration_floor_grants_full_budget(self):
        settings = SurrogateConfig(min_records=1, band=0.0, explore_every=3)
        allocator = trained_allocator(settings, n_rows=30)
        pool = [member(99.0, 1.0)]
        reasons = []
        for i in range(6):
            loser = candidate(model_id=100 + i)
            allocator.score(loser, pool, n_committed=30)
            reasons.append((loser.skip_reason, loser.budget_assigned))
        assert reasons[2] == (SKIP_EXPLORE, None)
        assert reasons[5] == (SKIP_EXPLORE, None)
        assert all(r == (SKIP_PROBE, 1) for i, r in enumerate(reasons) if i not in (2, 5))

    def test_probe_epochs_zero_prefills_outcome(self):
        settings = SurrogateConfig(min_records=1, band=0.0, probe_epochs=0)
        allocator = trained_allocator(settings, n_rows=30)
        skipped = candidate()
        allocator.score(skipped, [member(99.0, 1.0)], n_committed=30)
        assert skipped.budget_assigned == 0
        assert skipped.fitness == skipped.predicted_fitness
        assert skipped.flops == flops_of(skipped.genome)
        assert skipped.result is None

    def test_observe_only_learns_clean_full_budget_outcomes(self):
        allocator = BudgetAllocator(
            SurrogateConfig(), max_epochs=8, flops_fn=flops_of
        )
        genome = genome_from_bits((1, 0, 1, 0, 1, 0))
        base = dict(
            genome=genome,
            quarantined=False,
            budget_assigned=None,
            fitness=80.0,
            flops=flops_of(genome),
            result=SimpleNamespace(epochs_trained=8),
        )
        allocator.observe(SimpleNamespace(**base))
        allocator.observe(SimpleNamespace(**{**base, "budget_assigned": 1}))
        allocator.observe(SimpleNamespace(**{**base, "quarantined": True}))
        allocator.observe(SimpleNamespace(**{**base, "result": None}))
        assert allocator.n_commits == 4
        assert allocator.predictor.n_observations == 1


# ---------------------------------------------------------------------------
# end-to-end determinism
# ---------------------------------------------------------------------------


def workflow_config(**kw) -> WorkflowConfig:
    surrogate = kw.pop(
        "surrogate", SurrogateConfig(min_records=6, explore_every=4)
    )
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=6,
            offspring_per_generation=6,
            generations=4,
            max_epochs=8,
            nodes_per_phase=2,
            evolution=kw.pop("evolution", "barrier"),
            steady_lag=kw.pop("steady_lag", None),
        ),
        engine=EngineConfig(e_pred=8),
        mode="surrogate",
        seed=11,
        run_id=kw.pop("run_id", "surrogate-test"),
        surrogate=surrogate,
        **kw,
    )


def trails(result) -> list[dict]:
    out = [r.to_dict() for r in result.tracker.all_records()]
    for trail in out:
        # the only wall-clock (nondeterministic) field in surrogate mode
        trail["engine_overhead_seconds"] = None
    return out


@pytest.fixture(scope="module")
def serial_barrier():
    return run_workflow(workflow_config(backend="serial", n_workers=1))


@pytest.fixture(scope="module")
def serial_steady():
    return run_workflow(
        workflow_config(
            backend="serial", n_workers=1, evolution="steady", steady_lag=3
        )
    )


class TestOffModeBaseline:
    def test_surrogate_off_matches_pr8_fixture_byte_for_byte(self):
        baseline = json.loads(
            (FIXTURES / "lineage_pr8_baseline.json").read_text()
        )
        config = WorkflowConfig(
            nas=NSGANetConfig(
                population_size=4,
                offspring_per_generation=4,
                generations=3,
                max_epochs=8,
                nodes_per_phase=2,
            ),
            engine=EngineConfig(e_pred=8),
            mode="surrogate",
            seed=11,
            run_id="pr8-baseline",
            surrogate=None,
        )
        current = trails(run_workflow(config))
        assert len(current) == len(baseline)
        for trail in current:
            for key in PREDICTOR_KEYS:
                assert trail.pop(key) is None
        assert json.dumps(current, sort_keys=True) == json.dumps(
            baseline, sort_keys=True
        )


class TestCrossBackendDeterminism:
    def test_barrier_backends_bit_identical(self, serial_barrier):
        reference = trails(serial_barrier)
        assert any(t["budget_assigned"] is not None for t in reference)
        for backend, workers in (("thread", 3), ("process", 2)):
            other = run_workflow(workflow_config(backend=backend, n_workers=workers))
            assert trails(other) == reference, backend

    def test_steady_backends_bit_identical(self, serial_steady):
        reference = trails(serial_steady)
        assert any(t["budget_assigned"] is not None for t in reference)
        for backend, workers in (("thread", 3), ("process", 2)):
            other = run_workflow(
                workflow_config(
                    backend=backend,
                    n_workers=workers,
                    evolution="steady",
                    steady_lag=3,
                )
            )
            assert trails(other) == reference, backend

    @pytest.mark.parametrize("fixture", ["serial_barrier", "serial_steady"])
    def test_epoch_accounting_partition(self, fixture, request):
        result = request.getfixturevalue(fixture)
        search = result.search
        assert search.epoch_budget == (
            result.total_epochs_trained
            + search.total_epochs_saved
            + result.total_epochs_skipped
        )
        assert result.total_epochs_skipped > 0
        assert search.total_epochs_saved >= 0

    def test_skip_decisions_auditable_from_lineage_alone(self, serial_barrier):
        for trail in trails(serial_barrier):
            if trail["budget_assigned"] is not None:
                assert trail["skip_reason"] == SKIP_PROBE
                assert trail["predicted_fitness"] is not None
                assert trail["predicted_rank"] >= 1
                assert trail["epochs_trained"] <= trail["budget_assigned"]
            if trail["skip_reason"] == SKIP_EXPLORE:
                assert trail["budget_assigned"] is None


class TestResume:
    @pytest.mark.parametrize(
        "evolution,lag,cut", [("barrier", None, 2), ("steady", 3, 10)]
    )
    def test_resume_rebuilds_identical_trails(self, tmp_path, evolution, lag, cut):
        config = workflow_config(
            evolution=evolution, steady_lag=lag, run_id=f"resume-{evolution}"
        )
        full = run_workflow(config, commons_path=tmp_path)
        commons = DataCommons(tmp_path)
        for record in commons.load_models(full.run_id):
            interrupted = (
                record.generation >= cut
                if evolution == "barrier"
                else record.model_id >= cut
            )
            if interrupted:
                model_file = (
                    commons.root
                    / "runs"
                    / full.run_id
                    / "models"
                    / f"model_{record.model_id:05d}.json"
                )
                model_file.unlink()
        resumed = resume_workflow(commons, full.run_id)
        assert trails(resumed) == trails(full)

    def test_restore_equals_live_observation(self, serial_barrier, tmp_path):
        # replaying committed records must rebuild the predictor's exact
        # observation log (same rows, targets, and commit tags)
        records = sorted(
            serial_barrier.tracker.all_records(), key=lambda r: r.model_id
        )
        settings = SurrogateConfig(min_records=6, explore_every=4)

        def fake_flops(genome):  # restore never recomputes FLOPs
            raise AssertionError("restore must use recorded flops")

        restored = BudgetAllocator(settings, max_epochs=8, flops_fn=fake_flops)
        restored.restore(records)
        live = BudgetAllocator(settings, max_epochs=8, flops_fn=fake_flops)
        for record in records:
            live.observe(
                SimpleNamespace(
                    genome=Genome.from_dict(record.genome),
                    quarantined=record.quarantined,
                    budget_assigned=record.budget_assigned,
                    fitness=record.fitness,
                    flops=record.flops,
                    result=SimpleNamespace(epochs_trained=record.epochs_trained),
                )
            )
        assert restored.predictor.fingerprint() == live.predictor.fingerprint()
        assert restored.n_commits == live.n_commits == len(records)
        assert restored.n_scored == sum(
            1 for r in records if r.predicted_fitness is not None
        )


class TestAnalysisQueries:
    def test_training_matrix_matches_live_featurization(self, serial_barrier, tmp_path):
        records = serial_barrier.tracker.all_records()
        matrix = training_matrix(records)
        assert matrix.features.shape[0] == len(matrix.model_ids) > 0
        assert len(matrix.feature_names) == matrix.features.shape[1]
        by_id = {r.model_id: r for r in records}
        for model_id, row in zip(matrix.model_ids, matrix.features):
            record = by_id[int(model_id)]
            expected = genome_features(Genome.from_dict(record.genome), record.flops)
            assert np.allclose(row, expected)
            assert record.budget_assigned is None and not record.quarantined

    def test_skip_report_counts_consistent(self, serial_barrier):
        report = skip_report(serial_barrier.tracker.all_records())
        assert report.n_scored >= report.n_flagged >= report.n_probed > 0
        if report.precision is not None:
            assert 0.0 <= report.precision <= 1.0
        if report.recall is not None:
            assert 0.0 <= report.recall <= 1.0
        assert report.mae is not None and report.mae >= 0.0


class TestZeroBudgetPath:
    def test_probe_epochs_zero_bypasses_training_and_simulator(self):
        config = workflow_config(
            surrogate=SurrogateConfig(min_records=6, explore_every=4, probe_epochs=0),
            run_id="zero-budget",
        )
        result = run_workflow(config)
        skipped = [
            m for m in result.search.archive if m.budget_assigned == 0
        ]
        assert skipped, "expected at least one zero-budget skip"
        for individual in skipped:
            assert individual.result is None
            assert individual.fitness == individual.predicted_fitness
            assert not individual.epoch_seconds
        # zero-budget members never occupied a worker: the wall-time
        # simulation must exclude them rather than crash
        report = simulate_walltime(result.search, 2)
        assert report.total_epochs == result.total_epochs_trained
