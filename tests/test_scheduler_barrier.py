"""Tests for the no-barrier (asynchronous) scheduling ablation."""

import numpy as np
import pytest

from repro.scheduler import Job, schedule_run


class TestNoBarrier:
    def test_next_generation_starts_early(self):
        gen1 = [Job(0, (10.0,)), Job(1, (2.0,))]
        gen2 = [Job(2, (1.0,)), Job(3, (1.0,))]
        result = schedule_run([gen1, gen2], 2, barrier=False)
        placements = {p.job_id: p for p in result.placements}
        # job 2 starts as soon as job 1's GPU frees at t=2
        assert placements[2].start == pytest.approx(2.0)
        assert result.makespan < schedule_run(
            [list(gen1), list(gen2)], 2, barrier=True
        ).makespan

    def test_never_slower_than_barrier(self, rng):
        for trial in range(5):
            generations = [
                [
                    Job(g * 100 + i, tuple(rng.uniform(1, 10, 3)))
                    for i in range(int(rng.integers(2, 8)))
                ]
                for g in range(3)
            ]
            with_barrier = schedule_run(
                [list(g) for g in generations], 3, barrier=True
            ).makespan
            without = schedule_run(
                [list(g) for g in generations], 3, barrier=False
            ).makespan
            assert without <= with_barrier + 1e-9

    def test_work_conserved_without_barrier(self, rng):
        generations = [
            [Job(g * 10 + i, tuple(rng.uniform(1, 5, 2))) for i in range(5)]
            for g in range(2)
        ]
        total = sum(j.duration for gen in generations for j in gen)
        result = schedule_run(generations, 4, barrier=False)
        assert result.busy_seconds == pytest.approx(total)

    def test_identical_on_single_generation(self, rng):
        jobs = [Job(i, tuple(rng.uniform(1, 5, 2))) for i in range(6)]
        a = schedule_run([list(jobs)], 2, barrier=True)
        b = schedule_run([list(jobs)], 2, barrier=False)
        assert a.makespan == pytest.approx(b.makespan)

    def test_utilization_at_least_as_high(self, rng):
        generations = [
            [Job(g * 10 + i, (float(10 + 5 * i),)) for i in range(3)] for g in range(4)
        ]
        with_barrier = schedule_run([list(g) for g in generations], 2, barrier=True)
        without = schedule_run([list(g) for g in generations], 2, barrier=False)
        assert without.utilization >= with_barrier.utilization - 1e-9
