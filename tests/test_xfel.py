"""Tests for the XFEL diffraction data simulation."""

import numpy as np
import pytest

from repro.xfel import (
    BeamIntensity,
    DatasetConfig,
    Detector,
    DiffractionDataset,
    Protein,
    apply_photon_noise,
    concentrated_rotations,
    diffraction_batch,
    diffraction_pattern,
    generate_dataset,
    load_or_generate,
    make_conformations,
    normalize_patterns,
    quaternion_to_matrix,
    random_rotations,
    rotation_matrix,
    snr_estimate,
)
from repro.utils.rng import derive_rng


class TestBeamIntensity:
    def test_paper_fluences(self):
        assert BeamIntensity.LOW.photons_per_um2 == 1e14
        assert BeamIntensity.MEDIUM.photons_per_um2 == 1e15
        assert BeamIntensity.HIGH.photons_per_um2 == 1e16

    def test_photon_budget_ordering(self):
        assert (
            BeamIntensity.LOW.photon_budget
            < BeamIntensity.MEDIUM.photon_budget
            < BeamIntensity.HIGH.photon_budget
        )

    def test_label_round_trip(self):
        for member in BeamIntensity:
            assert BeamIntensity.from_label(member.label) is member
            assert BeamIntensity.from_label(member.label.upper()) is member

    def test_unknown_label(self):
        with pytest.raises(ValueError, match="unknown beam intensity"):
            BeamIntensity.from_label("ultra")


class TestProtein:
    def test_conformations_same_composition(self):
        a, b = make_conformations(n_atoms=100)
        assert a.n_atoms == b.n_atoms == 100
        np.testing.assert_array_equal(a.form_factors, b.form_factors)

    def test_conformations_differ_structurally(self):
        a, b = make_conformations(n_atoms=100)
        rmsd = np.sqrt(np.mean(np.sum((a.coords - b.coords) ** 2, axis=1)))
        assert rmsd > 1.0  # the domain actually moved

    def test_centered(self):
        a, _ = make_conformations(n_atoms=60)
        com = np.average(a.coords, axis=0, weights=a.form_factors)
        np.testing.assert_allclose(com, 0.0, atol=1e-9)

    def test_deterministic_per_seed(self):
        a1, _ = make_conformations(seed=5)
        a2, _ = make_conformations(seed=5)
        np.testing.assert_array_equal(a1.coords, a2.coords)
        a3, _ = make_conformations(seed=6)
        assert not np.array_equal(a1.coords, a3.coords)

    def test_radius_of_gyration_near_requested(self):
        a, _ = make_conformations(n_atoms=200, radius=10.0)
        assert a.radius_of_gyration() == pytest.approx(10.0, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            Protein("x", np.zeros((3, 2)), np.ones(3))
        with pytest.raises(ValueError):
            Protein("x", np.zeros((3, 3)), np.ones(4))
        with pytest.raises(ValueError):
            make_conformations(hinge_fraction=1.5)

    def test_rotation_matrix_orthonormal(self):
        rot = rotation_matrix(np.array([1.0, 2.0, 0.5]), 0.7)
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rot) == pytest.approx(1.0)


class TestOrientations:
    def test_random_rotations_are_rotations(self, rng):
        rots = random_rotations(rng, 50)
        assert rots.shape == (50, 3, 3)
        for rot in rots:
            np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-10)
            assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_quaternion_identity(self):
        np.testing.assert_allclose(
            quaternion_to_matrix(np.array([1.0, 0, 0, 0])), np.eye(3), atol=1e-12
        )

    def test_zero_quaternion_rejected(self):
        with pytest.raises(ValueError):
            quaternion_to_matrix(np.zeros(4))

    def test_concentrated_spread_limits_angle(self, rng):
        rots = concentrated_rotations(rng, 100, 0.2)
        # rotation angle from trace: cos(theta) = (tr - 1) / 2
        angles = np.arccos(np.clip((np.trace(rots, axis1=1, axis2=2) - 1) / 2, -1, 1))
        assert angles.max() <= 0.2 * np.pi + 1e-9

    def test_spread_one_is_uniform_sampler(self, rng):
        rots = concentrated_rotations(rng, 10, 1.0)
        assert rots.shape == (10, 3, 3)

    def test_invalid_spread(self, rng):
        with pytest.raises(ValueError):
            concentrated_rotations(rng, 5, 0.0)


class TestDiffraction:
    def test_pattern_shape_and_positivity(self):
        protein, _ = make_conformations(n_atoms=50)
        pattern = diffraction_pattern(protein, np.eye(3), Detector(n_pixels=16))
        assert pattern.shape == (16, 16)
        assert np.all(pattern >= 0)

    def test_central_speckle_is_brightest(self):
        # at q=0 all atoms scatter in phase: I(0) = (sum f)^2 is the max
        protein, _ = make_conformations(n_atoms=80)
        pattern = diffraction_pattern(protein, np.eye(3), Detector(n_pixels=17))
        center = pattern[8, 8]
        assert center == pytest.approx(protein.form_factors.sum() ** 2, rel=1e-6)
        assert center == pattern.max()

    def test_batch_matches_single(self, rng):
        protein, _ = make_conformations(n_atoms=40)
        detector = Detector(n_pixels=12)
        rots = random_rotations(rng, 3)
        batch = diffraction_batch(protein, rots, detector)
        for i in range(3):
            single = diffraction_pattern(protein, rots[i], detector)
            np.testing.assert_allclose(batch[i], single, rtol=1e-9)

    def test_orientation_changes_pattern(self, rng):
        protein, _ = make_conformations(n_atoms=60)
        detector = Detector(n_pixels=16)
        p1 = diffraction_pattern(protein, np.eye(3), detector)
        p2 = diffraction_pattern(protein, random_rotations(rng, 1)[0], detector)
        assert not np.allclose(p1, p2)

    def test_conformations_give_different_patterns(self):
        a, b = make_conformations(n_atoms=60)
        detector = Detector(n_pixels=16)
        pa = diffraction_pattern(a, np.eye(3), detector)
        pb = diffraction_pattern(b, np.eye(3), detector)
        assert not np.allclose(pa, pb)

    def test_invalid_rotation_shape(self):
        protein, _ = make_conformations(n_atoms=20)
        with pytest.raises(ValueError):
            diffraction_pattern(protein, np.eye(4), Detector())

    def test_detector_validation(self):
        with pytest.raises(ValueError):
            Detector(n_pixels=2)
        with pytest.raises(ValueError):
            Detector(q_max=-1.0)


class TestNoise:
    def _clean(self):
        protein, _ = make_conformations(n_atoms=50)
        return diffraction_pattern(protein, np.eye(3), Detector(n_pixels=16))

    def test_budget_respected_in_expectation(self, rng):
        clean = self._clean()
        noisy = apply_photon_noise(clean, BeamIntensity.MEDIUM, rng)
        assert noisy.sum() == pytest.approx(BeamIntensity.MEDIUM.photon_budget, rel=0.05)

    def test_counts_are_integral_nonnegative(self, rng):
        noisy = apply_photon_noise(self._clean(), BeamIntensity.LOW, rng)
        assert np.all(noisy >= 0)
        np.testing.assert_array_equal(noisy, np.round(noisy))

    def test_snr_increases_with_intensity(self):
        clean = self._clean()
        snrs = []
        for intensity in BeamIntensity:
            rng = derive_rng(0, "snr", intensity.label)
            noisy = apply_photon_noise(clean, intensity, rng)
            snrs.append(snr_estimate(clean, noisy))
        assert snrs[0] < snrs[1] < snrs[2]

    def test_normalize_zero_mean_unit_std(self, rng):
        noisy = apply_photon_noise(
            np.stack([self._clean()] * 3), BeamIntensity.HIGH, rng
        )
        normed = normalize_patterns(noisy)
        assert normed.shape == noisy.shape
        np.testing.assert_allclose(normed.mean(axis=(1, 2)), 0.0, atol=1e-9)
        np.testing.assert_allclose(normed.std(axis=(1, 2)), 1.0, atol=1e-6)

    def test_negative_intensity_rejected(self, rng):
        with pytest.raises(ValueError):
            apply_photon_noise(-np.ones((4, 4)), BeamIntensity.LOW, rng)


class TestDataset:
    def test_shapes_split_and_balance(self):
        config = DatasetConfig(images_per_class=20, image_size=16)
        dataset = generate_dataset(config)
        assert dataset.x_train.shape == (32, 1, 16, 16)
        assert dataset.x_test.shape == (8, 1, 16, 16)
        assert dataset.class_balance() == {"train": [16, 16], "test": [4, 4]}
        assert dataset.input_shape == (1, 16, 16)

    def test_deterministic_per_seed(self):
        config = DatasetConfig(images_per_class=10, image_size=16, seed=3)
        d1 = generate_dataset(config)
        d2 = generate_dataset(config)
        np.testing.assert_array_equal(d1.x_train, d2.x_train)
        np.testing.assert_array_equal(d1.y_train, d2.y_train)

    def test_intensities_differ(self):
        low = generate_dataset(DatasetConfig(intensity=BeamIntensity.LOW, images_per_class=5, image_size=16))
        high = generate_dataset(DatasetConfig(intensity=BeamIntensity.HIGH, images_per_class=5, image_size=16))
        assert not np.allclose(low.x_train, high.x_train)

    def test_save_load_round_trip(self, tmp_path):
        dataset = generate_dataset(DatasetConfig(images_per_class=6, image_size=16))
        path = dataset.save(tmp_path / "ds.npz")
        loaded = DiffractionDataset.load(path)
        np.testing.assert_array_equal(loaded.x_train, dataset.x_train)
        np.testing.assert_array_equal(loaded.y_test, dataset.y_test)
        assert loaded.intensity is dataset.intensity
        assert loaded.image_size == dataset.image_size

    def test_cache_reuse(self, tmp_path):
        config = DatasetConfig(images_per_class=6, image_size=16)
        d1 = load_or_generate(config, tmp_path)
        cache_file = tmp_path / f"{config.cache_key()}.npz"
        assert cache_file.exists()
        d2 = load_or_generate(config, tmp_path)
        np.testing.assert_array_equal(d1.x_train, d2.x_train)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(images_per_class=1)
        with pytest.raises(ValueError):
            DatasetConfig(train_fraction=1.0)
