"""Regenerate the PR-8 lineage baseline fixture.

Run from the repo root with ``PYTHONPATH=src python tests/fixtures/make_pr8_baseline.py``.
The fixture pins the full ``ModelRecord.to_dict()`` trails of a small seeded
surrogate-mode workflow so that ``--surrogate off`` runs can be byte-compared
against the pre-predictor behaviour (modulo fields added after PR 8, which the
comparing test requires to be null).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import EngineConfig
from repro.nas.search import NSGANetConfig
from repro.workflow.driver import run_workflow
from repro.workflow.interfaces import WorkflowConfig


def baseline_config() -> WorkflowConfig:
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=4,
            offspring_per_generation=4,
            generations=3,
            max_epochs=8,
            nodes_per_phase=2,
        ),
        engine=EngineConfig(e_pred=8),
        mode="surrogate",
        seed=11,
        run_id="pr8-baseline",
    )


def main() -> None:
    fixtures = Path(__file__).resolve().parent
    result = run_workflow(baseline_config())
    records = [r.to_dict() for r in result.tracker.all_records()]
    for trail in records:
        # Wall-clock overhead is the only nondeterministic field in surrogate
        # mode (epoch_seconds come from the deterministic cost model).
        trail["engine_overhead_seconds"] = None
    out = fixtures / "lineage_pr8_baseline.json"
    out.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(records)} trails)")


if __name__ == "__main__":
    main()
