"""Coverage for smaller surfaces: initializers, logging, runner cache."""

import logging

import numpy as np
import pytest

from repro.nn.initializers import get_initializer, glorot_uniform, he_normal, ones, zeros
from repro.utils.logging import configure_logging, get_logger


class TestInitializers:
    def test_he_normal_variance_matches_fan_in(self, rng):
        shape = (200, 300)  # dense: fan_in = 200
        w = he_normal(shape, rng)
        assert w.std() == pytest.approx(np.sqrt(2 / 200), rel=0.1)
        assert abs(w.mean()) < 0.02

    def test_he_normal_conv_fans(self, rng):
        shape = (16, 8, 3, 3)  # conv: fan_in = 8*9 = 72
        w = he_normal(shape, rng)
        assert w.std() == pytest.approx(np.sqrt(2 / 72), rel=0.1)

    def test_glorot_uniform_bounds(self, rng):
        shape = (100, 50)
        w = glorot_uniform(shape, rng)
        limit = np.sqrt(6 / 150)
        assert w.min() >= -limit and w.max() <= limit
        assert abs(w.mean()) < 0.02

    def test_constant_initializers(self, rng):
        assert np.all(zeros((3, 3), rng) == 0.0)
        assert np.all(ones((4,), rng) == 1.0)

    def test_registry(self, rng):
        assert get_initializer("he_normal") is he_normal
        with pytest.raises(KeyError, match="unknown initializer"):
            get_initializer("magic")


class TestLogging:
    def test_namespaced_logger(self):
        logger = get_logger("core.engine")
        assert logger.name == "repro.core.engine"

    def test_configure_idempotent(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            configure_logging()
            count_once = len(logging.getLogger("repro").handlers)
            configure_logging()
            assert len(logging.getLogger("repro").handlers) == count_once
        finally:
            root.handlers = before
            logging.disable(logging.INFO)


class TestRunnerCache:
    def test_memoized_per_intensity_and_seed(self):
        """Cache keys are (intensity, seed) — identity for repeats."""
        from repro.experiments.runner import _cached_comparison

        info_before = _cached_comparison.cache_info()
        # do not actually run a paper-scale search here; just verify the
        # lru_cache wiring exists and is keyed as documented
        assert info_before.maxsize == 32

    def test_clear_cache_resets(self):
        from repro.experiments.runner import _cached_comparison, clear_cache

        clear_cache()
        assert _cached_comparison.cache_info().currsize == 0
