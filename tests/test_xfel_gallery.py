"""Tests for terminal rendering of diffraction patterns."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.xfel import (
    BeamIntensity,
    Detector,
    apply_photon_noise,
    diffraction_pattern,
    make_conformations,
    render_intensity_gallery,
    render_pattern,
)


@pytest.fixture(scope="module")
def pattern():
    protein, _ = make_conformations(n_atoms=60)
    return diffraction_pattern(protein, np.eye(3), Detector(n_pixels=24))


class TestRenderPattern:
    def test_dimensions(self, pattern):
        text = render_pattern(pattern, width=40)
        lines = text.splitlines()
        assert all(len(line) == 40 for line in lines)
        assert len(lines) == 20  # width // 2

    def test_bright_center_uses_dense_glyphs(self, pattern):
        text = render_pattern(pattern, width=40)
        lines = text.splitlines()
        center = lines[len(lines) // 2]
        # the central speckle maps to the densest glyph
        assert "@" in center

    def test_constant_image_renders_uniformly(self):
        text = render_pattern(np.ones((8, 8)), width=16)
        assert set(text.replace("\n", "")) == {" "}

    def test_validation(self, pattern):
        with pytest.raises(ValueError):
            render_pattern(np.zeros(5))
        with pytest.raises(ValueError):
            render_pattern(pattern, width=2)


class TestGallery:
    def test_labels_and_photon_counts(self, pattern):
        rng = derive_rng(0, "gallery")
        images = {
            intensity.label: apply_photon_noise(pattern, intensity, rng)
            for intensity in BeamIntensity
        }
        gallery = render_intensity_gallery(images, width=24)
        for intensity in BeamIntensity:
            assert f"--- {intensity.label} " in gallery
        assert "photons" in gallery

    def test_noisier_images_render_sparser(self, pattern):
        rng = derive_rng(1, "gallery")
        low = apply_photon_noise(pattern, BeamIntensity.LOW, rng)
        high = apply_photon_noise(pattern, BeamIntensity.HIGH, rng)
        text_low = render_pattern(low, width=24)
        text_high = render_pattern(high, width=24)
        # photon starvation shows as more blank cells at low intensity
        assert text_low.count(" ") > text_high.count(" ")
