"""Tests for multi-protein (protein-type classification) datasets."""

import numpy as np
import pytest

from repro.xfel import (
    DatasetConfig,
    DiffractionDataset,
    generate_dataset,
    generate_dataset_from_proteins,
    make_conformations,
    make_protein,
)


@pytest.fixture(scope="module")
def proteins():
    return [make_protein(f"prot{i}", n_atoms=80, seed=100 + i) for i in range(3)]


class TestMakeProtein:
    def test_distinct_seeds_distinct_structures(self):
        a = make_protein("a", seed=1)
        b = make_protein("b", seed=2)
        assert a.coords.shape == b.coords.shape
        assert not np.allclose(a.coords, b.coords)

    def test_deterministic_per_name_and_seed(self):
        a1 = make_protein("x", seed=3)
        a2 = make_protein("x", seed=3)
        np.testing.assert_array_equal(a1.coords, a2.coords)

    def test_centered(self):
        p = make_protein("c", seed=4)
        com = np.average(p.coords, axis=0, weights=p.form_factors)
        np.testing.assert_allclose(com, 0.0, atol=1e-9)


class TestMulticlassDataset:
    def test_three_class_shapes_and_balance(self, proteins):
        config = DatasetConfig(images_per_class=10, image_size=16)
        dataset = generate_dataset_from_proteins(proteins, config)
        assert dataset.n_classes == 3
        assert dataset.x_train.shape == (24, 1, 16, 16)
        assert set(np.unique(dataset.y_train)) == {0, 1, 2}
        assert dataset.class_balance() == {"train": [8, 8, 8], "test": [2, 2, 2]}

    def test_two_conformations_equivalent_path(self):
        config = DatasetConfig(images_per_class=8, image_size=16)
        via_default = generate_dataset(config)
        conformations = make_conformations(n_atoms=config.n_atoms, seed=config.seed)
        via_explicit = generate_dataset_from_proteins(conformations, config)
        np.testing.assert_array_equal(via_default.x_train, via_explicit.x_train)
        np.testing.assert_array_equal(via_default.y_test, via_explicit.y_test)

    def test_duplicate_names_rejected(self, proteins):
        config = DatasetConfig(images_per_class=4, image_size=16)
        with pytest.raises(ValueError, match="unique"):
            generate_dataset_from_proteins([proteins[0], proteins[0]], config)

    def test_too_few_proteins_rejected(self, proteins):
        config = DatasetConfig(images_per_class=4, image_size=16)
        with pytest.raises(ValueError, match="at least 2"):
            generate_dataset_from_proteins([proteins[0]], config)

    def test_save_load_preserves_n_classes(self, proteins, tmp_path):
        config = DatasetConfig(images_per_class=4, image_size=16)
        dataset = generate_dataset_from_proteins(proteins, config)
        loaded = DiffractionDataset.load(dataset.save(tmp_path / "m.npz"))
        assert loaded.n_classes == 3
        np.testing.assert_array_equal(loaded.y_train, dataset.y_train)

    def test_nas_decodes_multiclass_head(self, proteins):
        from repro.nas import DecoderConfig, decode_genome, random_genome

        rng = np.random.default_rng(0)
        config = DatasetConfig(images_per_class=4, image_size=16)
        dataset = generate_dataset_from_proteins(proteins, config)
        network = decode_genome(
            random_genome(rng),
            DecoderConfig(dataset.input_shape, dataset.n_classes, (2, 3, 4)),
            rng=rng,
        )
        out = network.forward(dataset.x_train[:5])
        assert out.shape == (5, 3)
