"""Tests for the Markdown run-report generator."""

import pytest

from repro.analysis import render_run_report, write_run_report
from repro.lineage import DataCommons

from tests.test_lineage import small_tracked_run
from repro.lineage.records import RunRecord


@pytest.fixture()
def published_commons(tmp_path):
    _, tracker = small_tracked_run()
    commons = DataCommons(tmp_path)
    commons.publish_run(
        RunRecord(
            run_id="report_run",
            intensity="medium",
            nas_parameters={},
            engine_parameters={"function": "exp3"},
            notes="test run",
        ),
        tracker,
    )
    return commons


class TestRenderReport:
    def test_contains_all_sections(self, published_commons):
        report = render_run_report(published_commons, "report_run")
        for heading in (
            "# Run report",
            "## Summary",
            "## Early termination",
            "## Prediction quality",
            "## Pareto frontier",
            "## FLOPs vs accuracy",
            "## Top",
            "## Structural fingerprint",
        ):
            assert heading in report

    def test_summary_values_match_run(self, published_commons):
        run = published_commons.load_run("report_run")
        report = render_run_report(published_commons, "report_run")
        assert f"| models evaluated | {run.n_models} |" in report
        assert f"| epochs trained | {run.total_epochs_trained} |" in report
        assert "test run" in report

    def test_top_k_respected(self, published_commons):
        report = render_run_report(published_commons, "report_run", top_k=2)
        assert "## Top 2 models" in report

    def test_write_report_creates_file(self, published_commons, tmp_path):
        path = write_run_report(
            published_commons, "report_run", tmp_path / "out" / "report.md"
        )
        assert path.exists()
        assert path.read_text().startswith("# Run report")


class TestSearchProgress:
    def test_trajectory_monotone_and_summary(self, published_commons):
        import numpy as np

        from repro.analysis import search_progress

        records = published_commons.load_models("report_run")
        progress = search_progress(records)
        assert np.all(np.diff(progress.trajectory) >= 0)
        assert progress.final_best == progress.trajectory[-1]
        assert 1 <= progress.evaluations_to_95_percent <= len(progress.trajectory)
        assert len(progress.generation_best) == 2

    def test_report_includes_progress_section(self, published_commons):
        from repro.analysis import render_run_report

        report = render_run_report(published_commons, "report_run")
        assert "## Search progress" in report

    def test_best_so_far_requires_records(self):
        from repro.analysis import best_so_far

        with pytest.raises(ValueError):
            best_so_far([])
