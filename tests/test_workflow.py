"""Tests for workflow configuration, history store, and the orchestrator."""

import pytest

from repro.core.engine import EngineConfig
from repro.lineage import DataCommons
from repro.nas import NSGANetConfig
from repro.utils.validation import ValidationError
from repro.workflow import (
    A4NNOrchestrator,
    HistoryStore,
    WorkflowConfig,
    run_comparison,
    run_standalone,
    run_workflow,
)
from repro.xfel import BeamIntensity, DatasetConfig


def small_config(intensity=BeamIntensity.MEDIUM, mode="surrogate", seed=5, engine=True):
    nas = NSGANetConfig(
        population_size=3, offspring_per_generation=3, generations=2, max_epochs=12
    )
    return WorkflowConfig(
        nas=nas,
        engine=EngineConfig(e_pred=12, tolerance=1.0) if engine else None,
        dataset=DatasetConfig(intensity=intensity, images_per_class=20, image_size=16),
        mode=mode,
        n_gpus=(1, 4),
        seed=seed,
    )


class TestHistoryStore:
    def test_shared_per_model(self):
        store = HistoryStore()
        history = store.for_model(3)
        assert store.for_model(3) is history
        history.record_epoch(50.0, None)
        history.record_epoch(60.0, 80.0)
        assert history.fitness == [50.0, 60.0]
        assert history.predictions == [80.0]
        assert history.n_epochs == 2
        assert 3 in store and len(store) == 1
        assert store.model_ids() == [3]


class TestWorkflowConfig:
    def test_defaults_are_paper_settings(self):
        config = WorkflowConfig()
        assert config.nas.total_evaluations == 100
        assert config.engine.e_pred == config.nas.max_epochs == 25

    def test_e_pred_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="e_pred"):
            WorkflowConfig(engine=EngineConfig(e_pred=30))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError):
            WorkflowConfig(mode="imaginary")

    def test_invalid_gpus_rejected(self):
        with pytest.raises(ValidationError):
            WorkflowConfig(n_gpus=(0,))

    def test_standalone_copy(self):
        config = small_config()
        baseline = config.standalone()
        assert baseline.engine is None
        assert baseline.nas == config.nas
        assert "standalone" in baseline.resolved_run_id()

    def test_run_id_resolution(self):
        config = small_config()
        assert config.resolved_run_id() == "a4nn_surrogate_medium_seed5"
        named = WorkflowConfig(run_id="custom")
        assert named.resolved_run_id() == "custom"

    def test_dict_round_trip(self):
        config = small_config()
        rebuilt = WorkflowConfig.from_dict(config.to_dict())
        assert rebuilt.nas == config.nas
        assert rebuilt.engine == config.engine
        assert rebuilt.dataset == config.dataset
        assert rebuilt.mode == config.mode

    def test_dict_round_trip_standalone(self):
        config = small_config(engine=False)
        rebuilt = WorkflowConfig.from_dict(config.to_dict())
        assert rebuilt.engine is None

    def test_sanitize_writes_round_trips_and_defaults_off(self):
        config = small_config()
        assert config.sanitize_writes is False  # legacy documents stay off
        on = WorkflowConfig.from_dict({**config.to_dict(), "sanitize_writes": True})
        assert on.sanitize_writes is True
        assert WorkflowConfig.from_dict(config.to_dict()).sanitize_writes is False


class TestOrchestrator:
    def test_surrogate_run_end_to_end(self, tmp_path):
        config = small_config()
        commons = DataCommons(tmp_path)
        result = A4NNOrchestrator(config, commons=commons).run()
        assert len(result.search.archive) == 6
        assert set(result.walltime) == {1, 4}
        assert result.walltime[4].wall_seconds < result.walltime[1].wall_seconds
        assert result.run_id in commons.run_ids()
        assert len(commons.load_models(result.run_id)) == 6
        assert 0 < result.epochs_saved_fraction() < 1

    def test_histories_populated(self):
        config = small_config()
        orchestrator = A4NNOrchestrator(config)
        result = orchestrator.run()
        assert len(orchestrator.history_store) == len(result.search.archive)
        for member in result.search.archive:
            history = orchestrator.history_store.for_model(member.model_id)
            assert history.fitness == member.result.fitness_history

    def test_standalone_no_engine_records(self):
        result = run_standalone(small_config())
        assert result.total_epochs_saved == 0
        record = result.tracker.all_records()[0]
        assert record.engine_parameters is None
        assert record.prediction_history == []

    def test_real_mode_end_to_end(self):
        config = small_config(mode="real", intensity=BeamIntensity.HIGH)
        result = run_workflow(config)
        assert len(result.search.archive) == 6
        for member in result.search.archive:
            assert 0 <= member.fitness <= 100
            # real wall times measured, not modeled
            assert all(s > 0 for s in member.epoch_seconds)

    def test_publish_requires_commons(self):
        orchestrator = A4NNOrchestrator(small_config())
        result = orchestrator.run()
        with pytest.raises(RuntimeError, match="without a data commons"):
            orchestrator.publish(result)


class TestComparison:
    def test_paired_runs_differ_only_by_engine(self):
        comparison = run_comparison(small_config())
        assert comparison.a4nn.config.engine is not None
        assert comparison.standalone.config.engine is None
        # same initial genomes (same seed drives both searches)
        a_keys = [m.genome.key() for m in comparison.a4nn.search.archive[:3]]
        s_keys = [m.genome.key() for m in comparison.standalone.search.archive[:3]]
        assert a_keys == s_keys

    def test_savings_metrics(self):
        comparison = run_comparison(small_config())
        assert comparison.epochs_saved_percent > 0
        assert comparison.walltime_saved_hours(1) > 0
        assert comparison.speedup(1, 4) > 1.5

    def test_requires_engine_config(self):
        with pytest.raises(ValueError):
            run_comparison(small_config(engine=False))


class TestParallelExecution:
    def test_n_workers_gives_same_records_as_serial(self, tmp_path):
        import dataclasses

        serial = run_workflow(small_config(seed=2))
        parallel = run_workflow(
            dataclasses.replace(small_config(seed=2), n_workers=3)
        )
        serial_records = {
            r.model_id: (r.fitness, r.flops, r.epochs_trained)
            for r in serial.tracker.all_records()
        }
        parallel_records = {
            r.model_id: (r.fitness, r.flops, r.epochs_trained)
            for r in parallel.tracker.all_records()
        }
        assert serial_records == parallel_records

    def test_invalid_worker_count_rejected(self):
        import dataclasses

        with pytest.raises(ValidationError):
            dataclasses.replace(small_config(), n_workers=0)
