"""Tests for lineage records, tracker, data commons, and provenance."""

import json

import numpy as np
import pytest

from repro.core.engine import EngineConfig, PredictionEngine
from repro.lineage import (
    DataCommons,
    EpochRecord,
    LineageTracker,
    ModelRecord,
    ProvenanceGraph,
    RunRecord,
)
from repro.nas import Individual, NSGANet, NSGANetConfig, SurrogateEvaluator, random_genome
from repro.utils.rng import RngStream
from repro.xfel import BeamIntensity


def small_tracked_run(seed=0, checkpoint_dir=None, intensity=BeamIntensity.MEDIUM):
    """Run a tiny surrogate search with full lineage tracking."""
    engine = PredictionEngine(EngineConfig(e_pred=8))
    tracker = LineageTracker(
        engine_parameters=engine.describe(),
        checkpoint_dir=checkpoint_dir,
        training_parameters={"mode": "surrogate"},
    )
    evaluator = SurrogateEvaluator(
        intensity,
        engine,
        max_epochs=8,
        rng_stream=RngStream(seed),
        observers=[tracker.observe_epoch],
    )
    config = NSGANetConfig(
        population_size=3, offspring_per_generation=3, generations=2, max_epochs=8
    )
    search = NSGANet(
        config,
        evaluator,
        rng_stream=RngStream(seed),
        on_individual=tracker.observe_individual,
    )
    return search.run(), tracker


class TestRecords:
    def test_epoch_record_round_trip(self):
        record = EpochRecord(epoch=3, validation_accuracy=88.5, prediction=92.0)
        assert EpochRecord.from_dict(record.to_dict()) == record

    def test_model_record_round_trip(self, rng):
        record = ModelRecord(
            model_id=4,
            generation=1,
            genome=random_genome(rng).to_dict(),
            fitness=95.0,
            epochs_trained=10,
            max_epochs=25,
        )
        rebuilt = ModelRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt.model_id == 4
        assert rebuilt.epochs_saved == 15

    def test_run_record_round_trip(self):
        run = RunRecord(run_id="r1", intensity="low", nas_parameters={}, engine_parameters=None)
        assert RunRecord.from_dict(run.to_dict()).run_id == "r1"


class TestTracker:
    def test_records_every_model(self):
        result, tracker = small_tracked_run()
        records = tracker.all_records()
        assert len(records) == len(result.archive) == 6
        assert [r.model_id for r in records] == sorted(r.model_id for r in records)

    def test_epoch_trail_complete(self):
        result, tracker = small_tracked_run()
        for member in result.archive:
            record = tracker.records[member.model_id]
            assert len(record.epochs) == member.result.epochs_trained
            assert record.fitness == member.fitness
            assert record.fitness_history == member.result.fitness_history
            assert record.terminated_early == member.result.terminated_early
            # epoch wall times filled from the cost model
            assert all(e["epoch_seconds"] is not None for e in record.epochs)

    def test_engine_parameters_recorded(self):
        _, tracker = small_tracked_run()
        record = tracker.all_records()[0]
        assert record.engine_parameters["function"] == "exp3"
        assert record.training_parameters["mode"] == "surrogate"

    def test_real_mode_checkpoints_written(self, tmp_path, tiny_dataset):
        from repro.nas import TrainingEvaluator
        from repro.nas.decoder import DecoderConfig
        from repro.nn import load_checkpoint

        tracker = LineageTracker(checkpoint_dir=tmp_path)
        evaluator = TrainingEvaluator(
            tiny_dataset,
            None,
            max_epochs=2,
            decoder_config=DecoderConfig(tiny_dataset.input_shape, 2, (2, 3, 4)),
            rng_stream=RngStream(0),
            observers=[tracker.observe_epoch],
        )
        individual = Individual(random_genome(np.random.default_rng(0)), 0, 0)
        evaluator.evaluate(individual)
        tracker.observe_individual(individual)
        record = tracker.records[0]
        assert len(record.epochs) == 2
        # every epoch checkpoint is loadable
        for entry in record.epochs:
            assert entry["checkpoint"] is not None
        reloaded = load_checkpoint(tmp_path / "model_0", tag="epoch_2")
        assert reloaded.n_parameters() > 0


class TestDataCommons:
    def test_publish_and_reload(self, tmp_path):
        result, tracker = small_tracked_run()
        commons = DataCommons(tmp_path)
        run = RunRecord(
            run_id="test_run",
            intensity="medium",
            nas_parameters={"population_size": 3},
            engine_parameters={"function": "exp3"},
        )
        commons.publish_run(run, tracker)
        assert commons.run_ids() == ["test_run"]
        loaded_run = commons.load_run("test_run")
        assert loaded_run.n_models == 6
        assert loaded_run.total_epochs_trained == result.total_epochs_trained
        models = commons.load_models("test_run")
        assert len(models) == 6
        assert models[0].fitness == tracker.records[0].fitness

    def test_manifest_accumulates_runs(self, tmp_path):
        _, tracker = small_tracked_run()
        commons = DataCommons(tmp_path)
        for run_id in ("a", "b"):
            commons.publish_run(
                RunRecord(run_id=run_id, intensity="low", nas_parameters={}, engine_parameters=None),
                tracker,
            )
        assert commons.run_ids() == ["a", "b"]

    def test_iter_all_models(self, tmp_path):
        _, tracker = small_tracked_run()
        commons = DataCommons(tmp_path)
        commons.publish_run(
            RunRecord(run_id="x", intensity="low", nas_parameters={}, engine_parameters=None),
            tracker,
        )
        entries = list(commons.iter_all_models())
        assert len(entries) == 6
        assert all(run_id == "x" for run_id, _ in entries)

    def test_missing_run_raises(self, tmp_path):
        commons = DataCommons(tmp_path)
        with pytest.raises(FileNotFoundError):
            commons.load_models("nope")

    def test_size_bytes_positive(self, tmp_path):
        _, tracker = small_tracked_run()
        commons = DataCommons(tmp_path)
        commons.publish_run(
            RunRecord(run_id="x", intensity="low", nas_parameters={}, engine_parameters=None),
            tracker,
        )
        assert commons.size_bytes() > 0


class TestProvenance:
    def test_from_records_generations(self):
        _, tracker = small_tracked_run()
        graph = ProvenanceGraph.from_records(tracker.all_records())
        generations = graph.generations()
        assert set(generations) == {0, 1}
        assert len(generations[0]) == 3 and len(generations[1]) == 3

    def test_parentage_and_ancestry(self):
        _, tracker = small_tracked_run()
        graph = ProvenanceGraph.from_records(tracker.all_records())
        graph.add_parentage(3, [0, 1])
        graph.add_parentage(4, [3])
        assert graph.ancestors(4) == {0, 1, 3}
        assert graph.descendants(0) == {3, 4}

    def test_unknown_parent_rejected(self):
        _, tracker = small_tracked_run()
        graph = ProvenanceGraph.from_records(tracker.all_records())
        with pytest.raises(KeyError):
            graph.add_parentage(3, [99])

    def test_fittest_lineage_ends_at_best(self):
        _, tracker = small_tracked_run()
        graph = ProvenanceGraph.from_records(tracker.all_records())
        graph.add_parentage(5, [0])
        lineage = graph.fittest_lineage()
        best = max(tracker.all_records(), key=lambda r: r.fitness)
        assert lineage[-1] == best.model_id


class TestDataverseBundle:
    def _published(self, tmp_path):
        from repro.lineage import CitationMetadata

        _, tracker = small_tracked_run()
        commons = DataCommons(tmp_path / "commons")
        commons.publish_run(
            RunRecord(run_id="r1", intensity="medium", nas_parameters={}, engine_parameters=None),
            tracker,
        )
        metadata = CitationMetadata(
            title="A4NN record trails",
            authors=("Doe, Jane",),
            description="medium-intensity test run",
        )
        return commons, metadata

    def test_export_import_round_trip(self, tmp_path):
        from repro.lineage import export_bundle, import_bundle

        commons, metadata = self._published(tmp_path)
        bundle = export_bundle(commons, tmp_path / "bundle.zip", metadata)
        assert bundle.exists()

        imported, meta2 = import_bundle(bundle, tmp_path / "imported")
        assert meta2.title == metadata.title
        assert meta2.authors == metadata.authors
        assert imported.run_ids() == ["r1"]
        originals = commons.load_models("r1")
        copies = imported.load_models("r1")
        assert [m.to_dict() for m in originals] == [m.to_dict() for m in copies]

    def test_export_unknown_run_rejected(self, tmp_path):
        from repro.lineage import export_bundle

        commons, metadata = self._published(tmp_path)
        with pytest.raises(KeyError):
            export_bundle(commons, tmp_path / "b.zip", metadata, run_ids=["ghost"])

    def test_import_rejects_non_bundle(self, tmp_path):
        import zipfile

        from repro.lineage import import_bundle

        fake = tmp_path / "fake.zip"
        with zipfile.ZipFile(fake, "w") as z:
            z.writestr("whatever.txt", "hi")
        with pytest.raises(ValueError, match="not an A4NN bundle"):
            import_bundle(fake, tmp_path / "out")

    def test_citation_metadata_round_trip(self):
        from repro.lineage import CitationMetadata

        metadata = CitationMetadata(
            title="T", authors=("A", "B"), description="D", keywords=("k1",)
        )
        rebuilt = CitationMetadata.from_dict(metadata.to_dict())
        assert rebuilt == metadata
