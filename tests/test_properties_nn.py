"""Hypothesis property tests for the NN substrate and decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nas.decoder import DecoderConfig, decode_genome
from repro.nas.genome import Genome, n_connection_bits
from repro.nn import load_state_dict, network_from_config, state_dict
from repro.nn.serialization import architecture_config
from repro.utils.rng import derive_rng


@st.composite
def paper_genomes(draw):
    """Genomes in the paper's 3-phase, 4-node layout."""
    width = (n_connection_bits(4) + 1) * 3
    bits = draw(st.lists(st.integers(0, 1), min_size=width, max_size=width))
    return Genome.from_bits(bits, (4, 4, 4))


class TestDecoderProperties:
    @given(paper_genomes(), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_every_genome_decodes_and_runs(self, genome, seed):
        rng = derive_rng(seed, "decode")
        network = decode_genome(
            genome, DecoderConfig((1, 8, 8), 2, (2, 3, 4)), rng=rng
        )
        x = rng.normal(size=(2, 1, 8, 8))
        out = network.forward(x)
        assert out.shape == (2, 2)
        assert np.all(np.isfinite(out))
        # introspected shape chain agrees with execution
        assert network.output_shape() == (2,)
        assert network.flops() > 0

    @given(paper_genomes())
    @settings(max_examples=25, deadline=None)
    def test_flops_and_params_deterministic_per_genome(self, genome):
        config = DecoderConfig((1, 8, 8), 2, (2, 3, 4))
        a = decode_genome(genome, config, rng=derive_rng(0, "a"))
        b = decode_genome(genome, config, rng=derive_rng(1, "b"))
        # structure-derived quantities are weight-independent
        assert a.flops() == b.flops()
        assert a.n_parameters() == b.n_parameters()

    @given(paper_genomes(), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_state_dict_round_trip_exact(self, genome, seed):
        rng = derive_rng(seed, "roundtrip")
        config = DecoderConfig((1, 8, 8), 2, (2, 3, 4))
        network = decode_genome(genome, config, rng=rng)
        x = rng.normal(size=(3, 1, 8, 8))
        network.forward(x, training=True)  # populate batch-norm state

        rebuilt = network_from_config(architecture_config(network))
        load_state_dict(rebuilt, state_dict(network))
        np.testing.assert_array_equal(rebuilt.predict(x), network.predict(x))


class TestBackwardShapeProperty:
    @given(paper_genomes(), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_backward_returns_input_shaped_grad(self, genome, batch):
        rng = derive_rng(7, "bk", batch)
        network = decode_genome(
            genome, DecoderConfig((1, 8, 8), 2, (2, 2, 2)), rng=rng
        )
        x = rng.normal(size=(batch, 1, 8, 8))
        out = network.forward(x, training=True)
        grad = network.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert np.all(np.isfinite(grad))
