"""Tests for the ensemble prediction engine extension."""

import numpy as np
import pytest

from repro.core import (
    EnsembleConfig,
    EnsemblePredictionEngine,
    PredictionEngine,
    run_training_loop,
)
from repro.nas.surrogate import LearningCurveModel
from repro.utils.validation import ValidationError

from tests.conftest import make_concave_curve


class TestConstruction:
    def test_defaults(self):
        engine = EnsemblePredictionEngine()
        assert len(engine.members) == 4
        # c_min derives from the widest member (janoschek: 4 params)
        assert engine.c_min == 4

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            EnsemblePredictionEngine(EnsembleConfig(functions=("nope",)))

    def test_empty_functions_rejected(self):
        with pytest.raises(ValidationError):
            EnsemblePredictionEngine(EnsembleConfig(functions=()))

    def test_unknown_aggregator_rejected(self):
        with pytest.raises(ValidationError):
            EnsemblePredictionEngine(EnsembleConfig(aggregator="mode"))

    def test_describe_lists_formulas(self):
        snapshot = EnsemblePredictionEngine().describe()
        assert snapshot["formulas"]["exp3"] == "a - b**(c - x)"
        assert snapshot["c_min"] == 4


class TestPrediction:
    def test_no_prediction_before_c_min(self):
        engine = EnsemblePredictionEngine()
        history = list(make_concave_curve(3))
        assert engine.predictor(3, history) is None

    def test_member_predictions_per_family(self):
        engine = EnsemblePredictionEngine()
        history = list(make_concave_curve(12))
        members = engine.member_predictions(history)
        assert set(members) <= {m.name for m in engine.members}
        assert len(members) >= 2
        for value in members.values():
            assert np.isfinite(value)

    def test_median_aggregation(self):
        engine = EnsemblePredictionEngine()
        history = list(make_concave_curve(12))
        members = engine.member_predictions(history)
        prediction = engine.predictor(12, history)
        assert prediction == pytest.approx(float(np.median(list(members.values()))))

    def test_min_max_aggregators_bracket_median(self):
        history = list(make_concave_curve(12))
        lo = EnsemblePredictionEngine(EnsembleConfig(aggregator="min")).predictor(12, history)
        hi = EnsemblePredictionEngine(EnsembleConfig(aggregator="max")).predictor(12, history)
        mid = EnsemblePredictionEngine(EnsembleConfig(aggregator="median")).predictor(12, history)
        assert lo <= mid <= hi

    def test_epoch_mismatch_raises(self):
        engine = EnsemblePredictionEngine()
        with pytest.raises(ValueError):
            engine.predictor(3, [50.0, 55.0])


class TestAlgorithm1Compatibility:
    def test_drives_training_loop(self):
        curve = make_concave_curve(25, rate=0.45, noise=0.2, seed=4)
        result = run_training_loop(LearningCurveModel(curve), EnsemblePredictionEngine(), 25)
        assert result.terminated_early
        assert result.epochs_trained < 25
        assert result.fitness == pytest.approx(curve[-1], abs=3.0)

    def test_session_interface(self):
        engine = EnsemblePredictionEngine()
        session = engine.session()
        for accuracy in make_concave_curve(25, rate=0.5):
            session.observe(accuracy)
            if session.converged:
                break
        assert session.converged

    def test_close_to_single_engine_on_clean_curves(self):
        """On well-behaved curves both engines should predict similarly."""
        curve = make_concave_curve(25, asymptote=96.0, rate=0.4)
        single = run_training_loop(LearningCurveModel(curve), PredictionEngine(), 25)
        ensemble = run_training_loop(
            LearningCurveModel(curve.copy()), EnsemblePredictionEngine(), 25
        )
        assert single.terminated_early and ensemble.terminated_early
        assert abs(single.fitness - ensemble.fitness) < 3.0
