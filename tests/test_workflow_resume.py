"""Tests for resuming interrupted searches from the commons."""

import dataclasses

import pytest

from repro.lineage import DataCommons
from repro.workflow import (
    individual_from_record,
    rebuild_search_state,
    resume_workflow,
    run_workflow,
)

from tests.test_workflow import small_config


def steady_config(seed=31, lag=3):
    config = small_config(seed=seed)
    return dataclasses.replace(
        config,
        nas=dataclasses.replace(config.nas, evolution="steady", steady_lag=lag),
    )


def publish_tick_prefix(tmp_path, *, keep_ticks, seed=31):
    """Publish a steady run, then delete all records past a tick prefix."""
    config = steady_config(seed=seed)
    result = run_workflow(config, commons_path=tmp_path)
    commons = DataCommons(tmp_path)
    run_id = result.run_id
    for record in commons.load_models(run_id):
        if record.model_id >= keep_ticks:
            (
                commons.root
                / "runs"
                / run_id
                / "models"
                / f"model_{record.model_id:05d}.json"
            ).unlink()
    return commons, run_id, result


def publish_truncated(tmp_path, *, keep_generations, seed=31):
    """Publish a run, then delete the records of later generations."""
    config = small_config(seed=seed)
    result = run_workflow(config, commons_path=tmp_path)
    commons = DataCommons(tmp_path)
    run_id = result.run_id
    for record in commons.load_models(run_id):
        if record.generation >= keep_generations:
            path = (
                commons.root
                / "runs"
                / run_id
                / "models"
                / f"model_{record.model_id:05d}.json"
            )
            path.unlink()
    return commons, run_id, result


class TestIndividualFromRecord:
    def test_round_trip_through_records(self, tmp_path):
        commons, run_id, result = publish_truncated(tmp_path, keep_generations=2)
        record = commons.load_models(run_id)[0]
        individual = individual_from_record(record)
        original = result.search.archive[0]
        assert individual.fitness == original.fitness
        assert individual.flops == original.flops
        assert individual.genome == original.genome
        assert individual.result.epochs_trained == original.result.epochs_trained
        assert individual.epoch_seconds == pytest.approx(original.epoch_seconds)

    def test_incomplete_record_rejected(self, tmp_path):
        from repro.lineage.records import ModelRecord
        from repro.nas import random_genome
        import numpy as np

        record = ModelRecord(
            model_id=0, generation=0, genome=random_genome(np.random.default_rng(0)).to_dict()
        )
        with pytest.raises(ValueError, match="incomplete"):
            individual_from_record(record)


class TestRebuildState:
    def test_state_covers_complete_generations(self, tmp_path):
        commons, run_id, _ = publish_truncated(tmp_path, keep_generations=1)
        state = rebuild_search_state(
            commons.load_models(run_id),
            population_size=3,
            offspring_per_generation=3,
        )
        assert state.next_generation == 1
        assert len(state.archive) == 3
        assert len(state.population) == 3
        assert state.next_model_id == 3
        assert len(state.generation_stats) == 1

    def test_partial_generation_dropped(self, tmp_path):
        commons, run_id, _ = publish_truncated(tmp_path, keep_generations=2)
        records = commons.load_models(run_id)
        # remove one model of generation 1 to make it incomplete
        victim = next(r for r in records if r.generation == 1)
        (
            commons.root
            / "runs"
            / run_id
            / "models"
            / f"model_{victim.model_id:05d}.json"
        ).unlink()
        state = rebuild_search_state(
            commons.load_models(run_id),
            population_size=3,
            offspring_per_generation=3,
        )
        assert state.next_generation == 1  # gen 1 incomplete -> redo it

    def test_missing_initial_generation_rejected(self):
        with pytest.raises(ValueError, match="initial generation"):
            rebuild_search_state([], population_size=3, offspring_per_generation=3)


class TestResumeWorkflow:
    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        commons, run_id, full = publish_truncated(tmp_path, keep_generations=1, seed=33)
        resumed = resume_workflow(commons, run_id)

        assert len(resumed.search.archive) == len(full.search.archive)
        for a, b in zip(resumed.search.archive, full.search.archive):
            assert a.model_id == b.model_id
            assert a.genome == b.genome
            assert a.fitness == b.fitness
            assert a.result.epochs_trained == b.result.epochs_trained
        # republished commons is complete again
        assert len(commons.load_models(run_id)) == len(full.search.archive)

    def test_resume_verifies_against_replay(self, tmp_path):
        from repro.lineage import verify_run

        commons, run_id, _ = publish_truncated(tmp_path, keep_generations=1, seed=35)
        resume_workflow(commons, run_id)
        report = verify_run(commons, run_id)
        assert report.matches, report.summary()

    def test_resume_requires_stored_config(self, tmp_path):
        from repro.lineage.records import RunRecord

        commons = DataCommons(tmp_path)
        commons.publish_run(
            RunRecord(run_id="legacy", intensity="low", nas_parameters={}, engine_parameters=None),
            [],
        )
        with pytest.raises(ValueError, match="no stored configuration"):
            resume_workflow(commons, "legacy")

    def test_resume_of_complete_run_is_noop(self, tmp_path):
        # edge case: nothing left to do — the resumed result must cover
        # the whole run without re-evaluating anything
        config = small_config(seed=39)
        full = run_workflow(config, commons_path=tmp_path)
        commons = DataCommons(tmp_path)
        resumed = resume_workflow(commons, full.run_id)
        assert len(resumed.search.archive) == len(full.search.archive)
        assert [m.fitness for m in resumed.search.archive] == [
            m.fitness for m in full.search.archive
        ]
        assert [g.generation for g in resumed.search.generations] == [
            g.generation for g in full.search.generations
        ]


class TestRebuildSteadyState:
    def test_prefix_cut_to_whole_chunks(self, tmp_path):
        commons, run_id, _ = publish_tick_prefix(tmp_path, keep_ticks=4)
        state = rebuild_search_state(
            commons.load_models(run_id),
            population_size=3,
            offspring_per_generation=3,
            evolution="steady",
        )
        # 4 contiguous ticks, but only the first chunk (3) is whole
        assert state.next_model_id == 3
        assert state.next_generation == 1
        assert [m.logical_tick for m in state.archive] == [0, 1, 2]
        assert len(state.generation_stats) == 1

    def test_id_gap_cuts_the_prefix(self, tmp_path):
        commons, run_id, _ = publish_tick_prefix(tmp_path, keep_ticks=6)
        (
            commons.root / "runs" / run_id / "models" / "model_00004.json"
        ).unlink()
        state = rebuild_search_state(
            commons.load_models(run_id),
            population_size=3,
            offspring_per_generation=3,
            evolution="steady",
        )
        # ticks 0..3,5 -> contiguous prefix 0..3 -> one whole chunk
        assert state.next_model_id == 3

    def test_initial_population_incomplete_rejected(self, tmp_path):
        commons, run_id, _ = publish_tick_prefix(tmp_path, keep_ticks=2)
        with pytest.raises(ValueError, match="initial population incomplete"):
            rebuild_search_state(
                commons.load_models(run_id),
                population_size=3,
                offspring_per_generation=3,
                evolution="steady",
            )

    def test_tick_id_mismatch_rejected(self, tmp_path):
        commons, run_id, _ = publish_tick_prefix(tmp_path, keep_ticks=6)
        records = commons.load_models(run_id)
        records[2].logical_tick = 5  # corrupted trail
        with pytest.raises(ValueError, match="logical_tick"):
            rebuild_search_state(
                records,
                population_size=3,
                offspring_per_generation=3,
                evolution="steady",
            )


class TestResumeSteadyWorkflow:
    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        commons, run_id, full = publish_tick_prefix(tmp_path, keep_ticks=4, seed=37)
        resumed = resume_workflow(commons, run_id)
        assert [m.logical_tick for m in resumed.search.archive] == list(range(6))
        for a, b in zip(resumed.search.archive, full.search.archive):
            assert a.model_id == b.model_id
            assert a.logical_tick == b.logical_tick
            assert a.genome == b.genome
            assert a.fitness == b.fitness
        assert len(commons.load_models(run_id)) == 6

    def test_state_survives_serialization_bit_exactly(self, tmp_path):
        # satellite: archive, lineage ticks, and next_model_id must
        # round-trip through the published JSON without drift
        config = steady_config(seed=41)
        full = run_workflow(config, commons_path=tmp_path)
        commons = DataCommons(tmp_path)
        state = rebuild_search_state(
            commons.load_models(full.run_id),
            population_size=config.nas.population_size,
            offspring_per_generation=config.nas.offspring_per_generation,
            evolution="steady",
        )
        assert state.next_model_id == len(full.search.archive)
        assert [m.logical_tick for m in state.archive] == [
            m.logical_tick for m in full.search.archive
        ]
        for restored, original in zip(state.archive, full.search.archive):
            assert restored.genome == original.genome
            assert restored.fitness == original.fitness
            assert restored.flops == original.flops
            assert restored.result.fitness_history == original.result.fitness_history
        assert [m.model_id for m in state.population] == [
            m.model_id for m in full.search.population
        ]

    def test_resume_verifies_against_replay(self, tmp_path):
        from repro.lineage import verify_run

        commons, run_id, _ = publish_tick_prefix(tmp_path, keep_ticks=4, seed=43)
        resume_workflow(commons, run_id)
        report = verify_run(commons, run_id)
        assert report.matches, report.summary()
