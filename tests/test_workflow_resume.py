"""Tests for resuming interrupted searches from the commons."""

import pytest

from repro.lineage import DataCommons
from repro.workflow import (
    individual_from_record,
    rebuild_search_state,
    resume_workflow,
    run_workflow,
)

from tests.test_workflow import small_config


def publish_truncated(tmp_path, *, keep_generations, seed=31):
    """Publish a run, then delete the records of later generations."""
    config = small_config(seed=seed)
    result = run_workflow(config, commons_path=tmp_path)
    commons = DataCommons(tmp_path)
    run_id = result.run_id
    for record in commons.load_models(run_id):
        if record.generation >= keep_generations:
            path = (
                commons.root
                / "runs"
                / run_id
                / "models"
                / f"model_{record.model_id:05d}.json"
            )
            path.unlink()
    return commons, run_id, result


class TestIndividualFromRecord:
    def test_round_trip_through_records(self, tmp_path):
        commons, run_id, result = publish_truncated(tmp_path, keep_generations=2)
        record = commons.load_models(run_id)[0]
        individual = individual_from_record(record)
        original = result.search.archive[0]
        assert individual.fitness == original.fitness
        assert individual.flops == original.flops
        assert individual.genome == original.genome
        assert individual.result.epochs_trained == original.result.epochs_trained
        assert individual.epoch_seconds == pytest.approx(original.epoch_seconds)

    def test_incomplete_record_rejected(self, tmp_path):
        from repro.lineage.records import ModelRecord
        from repro.nas import random_genome
        import numpy as np

        record = ModelRecord(
            model_id=0, generation=0, genome=random_genome(np.random.default_rng(0)).to_dict()
        )
        with pytest.raises(ValueError, match="incomplete"):
            individual_from_record(record)


class TestRebuildState:
    def test_state_covers_complete_generations(self, tmp_path):
        commons, run_id, _ = publish_truncated(tmp_path, keep_generations=1)
        state = rebuild_search_state(
            commons.load_models(run_id),
            population_size=3,
            offspring_per_generation=3,
        )
        assert state.next_generation == 1
        assert len(state.archive) == 3
        assert len(state.population) == 3
        assert state.next_model_id == 3
        assert len(state.generation_stats) == 1

    def test_partial_generation_dropped(self, tmp_path):
        commons, run_id, _ = publish_truncated(tmp_path, keep_generations=2)
        records = commons.load_models(run_id)
        # remove one model of generation 1 to make it incomplete
        victim = next(r for r in records if r.generation == 1)
        (
            commons.root
            / "runs"
            / run_id
            / "models"
            / f"model_{victim.model_id:05d}.json"
        ).unlink()
        state = rebuild_search_state(
            commons.load_models(run_id),
            population_size=3,
            offspring_per_generation=3,
        )
        assert state.next_generation == 1  # gen 1 incomplete -> redo it

    def test_missing_initial_generation_rejected(self):
        with pytest.raises(ValueError, match="initial generation"):
            rebuild_search_state([], population_size=3, offspring_per_generation=3)


class TestResumeWorkflow:
    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        commons, run_id, full = publish_truncated(tmp_path, keep_generations=1, seed=33)
        resumed = resume_workflow(commons, run_id)

        assert len(resumed.search.archive) == len(full.search.archive)
        for a, b in zip(resumed.search.archive, full.search.archive):
            assert a.model_id == b.model_id
            assert a.genome == b.genome
            assert a.fitness == b.fitness
            assert a.result.epochs_trained == b.result.epochs_trained
        # republished commons is complete again
        assert len(commons.load_models(run_id)) == len(full.search.archive)

    def test_resume_verifies_against_replay(self, tmp_path):
        from repro.lineage import verify_run

        commons, run_id, _ = publish_truncated(tmp_path, keep_generations=1, seed=35)
        resume_workflow(commons, run_id)
        report = verify_run(commons, run_id)
        assert report.matches, report.summary()

    def test_resume_requires_stored_config(self, tmp_path):
        from repro.lineage.records import RunRecord

        commons = DataCommons(tmp_path)
        commons.publish_run(
            RunRecord(run_id="legacy", intensity="low", nas_parameters={}, engine_parameters=None),
            [],
        )
        with pytest.raises(ValueError, match="no stored configuration"):
            resume_workflow(commons, "legacy")
