"""Tests for the NSGA-II machinery, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nas.nsga2 import (
    binary_tournament,
    crowded_compare,
    crowding_distance,
    dominates,
    environmental_selection,
    fast_non_dominated_sort,
    pareto_front_mask,
    steady_eviction,
)

objective_arrays = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 40), st.integers(1, 3)),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1, 1], [2, 2])
        assert dominates([1, 2], [1, 3])

    def test_equal_does_not_dominate(self):
        assert not dominates([1, 2], [1, 2])

    def test_incomparable(self):
        assert not dominates([1, 3], [3, 1])
        assert not dominates([3, 1], [1, 3])


class TestNonDominatedSort:
    def test_simple_fronts(self):
        objectives = np.array([[1, 1], [2, 2], [0, 3], [3, 3]])
        fronts = fast_non_dominated_sort(objectives)
        assert sorted(fronts[0].tolist()) == [0, 2]
        assert fronts[1].tolist() == [1]
        assert fronts[2].tolist() == [3]

    def test_all_identical_single_front(self):
        fronts = fast_non_dominated_sort(np.ones((5, 2)))
        assert len(fronts) == 1
        assert len(fronts[0]) == 5

    def test_chain_gives_singleton_fronts(self):
        objectives = np.array([[i, i] for i in range(6)])
        fronts = fast_non_dominated_sort(objectives)
        assert [len(f) for f in fronts] == [1] * 6

    def test_empty(self):
        assert fast_non_dominated_sort(np.zeros((0, 2))) == []

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            fast_non_dominated_sort(np.array([[np.nan, 1.0]]))

    @given(objective_arrays)
    @settings(max_examples=60, deadline=None)
    def test_property_partition_and_front_correctness(self, objectives):
        fronts = fast_non_dominated_sort(objectives)
        # fronts partition the population
        combined = np.concatenate(fronts)
        assert sorted(combined.tolist()) == list(range(objectives.shape[0]))
        # nothing in front k is dominated by anything in front >= k
        for k, front in enumerate(fronts):
            later = np.concatenate(fronts[k:])
            for i in front:
                assert not any(
                    dominates(objectives[j], objectives[i]) for j in later
                )
        # everything in front k+1 is dominated by something in front k
        for k in range(len(fronts) - 1):
            for j in fronts[k + 1]:
                assert any(
                    dominates(objectives[i], objectives[j]) for i in fronts[k]
                )


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        objectives = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        distance = crowding_distance(objectives)
        assert np.isinf(distance[0]) and np.isinf(distance[3])
        assert np.isfinite(distance[1]) and np.isfinite(distance[2])

    def test_two_or_fewer_all_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0]]))))
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))))

    def test_constant_objective_contributes_nothing(self):
        objectives = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        distance = crowding_distance(objectives)
        assert np.isfinite(distance[1])

    def test_duplicate_extremes_all_infinite(self):
        # regression: with duplicated boundary vectors, only the
        # stable-sort-first/last duplicate used to get inf, so identical
        # points received asymmetric distances depending on input order
        objectives = np.array(
            [[0.0, 3.0], [0.0, 3.0], [1.0, 2.0], [3.0, 0.0], [3.0, 0.0]]
        )
        distance = crowding_distance(objectives)
        assert np.isinf(distance[0]) and np.isinf(distance[1])
        assert np.isinf(distance[3]) and np.isinf(distance[4])
        assert np.isfinite(distance[2])

    def test_duplicate_extremes_order_invariant(self, rng):
        objectives = np.array(
            [[0.0, 3.0], [1.0, 2.0], [0.0, 3.0], [2.0, 1.0], [3.0, 0.0], [3.0, 0.0]]
        )
        base = crowding_distance(objectives)
        for _ in range(10):
            perm = rng.permutation(len(objectives))
            permuted = crowding_distance(objectives[perm])
            np.testing.assert_array_equal(permuted, base[perm])

    def test_denser_points_lower_distance(self):
        objectives = np.array(
            [[0.0, 0.0], [1.0, 1.0], [1.05, 1.05], [1.1, 1.1], [5.0, 5.0]]
        )
        distance = crowding_distance(objectives)
        # point 2 sits in a tight cluster; point 1 has a wide gap to point 0
        assert distance[2] < distance[1]


class TestCrowdedCompare:
    def test_rank_wins(self):
        assert crowded_compare(0, 0.1, 1, 10.0)

    def test_distance_breaks_ties(self):
        assert crowded_compare(1, 5.0, 1, 2.0)
        assert not crowded_compare(1, 2.0, 1, 5.0)


class TestEnvironmentalSelection:
    def test_selects_k(self):
        rng = np.random.default_rng(0)
        objectives = rng.normal(size=(20, 2))
        survivors = environmental_selection(objectives, 8)
        assert len(survivors) == 8
        assert len(set(survivors.tolist())) == 8

    def test_first_front_prioritized(self):
        objectives = np.array([[0.0, 0.0], [5.0, 5.0], [6.0, 6.0]])
        survivors = environmental_selection(objectives, 1)
        assert survivors.tolist() == [0]

    def test_k_zero_and_k_full(self):
        objectives = np.ones((4, 2))
        assert len(environmental_selection(objectives, 0)) == 0
        assert sorted(environmental_selection(objectives, 4).tolist()) == [0, 1, 2, 3]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            environmental_selection(np.ones((3, 2)), 5)

    @given(objective_arrays, st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_property_pareto_front_survives(self, objectives, k):
        n = objectives.shape[0]
        k = min(k, n)
        survivors = set(environmental_selection(objectives, k).tolist())
        assert len(survivors) == k
        front = fast_non_dominated_sort(objectives)[0]
        if k >= len(front):
            assert set(front.tolist()) <= survivors


class TestBinaryTournament:
    def test_winner_count_and_validity(self, rng):
        objectives = rng.normal(size=(10, 2))
        winners = binary_tournament(objectives, rng, n_winners=7)
        assert winners.shape == (7,)
        assert np.all((winners >= 0) & (winners < 10))

    def test_dominant_point_always_beats(self, rng):
        # point 0 dominates everything: whenever sampled it must win
        objectives = np.vstack([[0.0, 0.0], np.full((5, 2), 10.0)])
        winners = binary_tournament(objectives, rng, n_winners=200)
        # the best point wins far more often than uniform (2/6 pairings include it)
        assert (winners == 0).mean() > 0.2

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(ValueError):
            binary_tournament(np.zeros((0, 2)), rng, n_winners=1)

    def test_sorts_pool_exactly_once(self, rng, monkeypatch):
        # regression: the tournament used to run fast_non_dominated_sort
        # twice per call (once for ranks, once for distances)
        import repro.nas.nsga2 as nsga2_mod

        calls = {"n": 0}
        real_sort = nsga2_mod.fast_non_dominated_sort

        def counting_sort(objectives):
            calls["n"] += 1
            return real_sort(objectives)

        monkeypatch.setattr(nsga2_mod, "fast_non_dominated_sort", counting_sort)
        objectives = rng.normal(size=(12, 2))
        seed_rng = np.random.default_rng(7)
        winners = binary_tournament(objectives, seed_rng, n_winners=8)
        assert calls["n"] == 1
        # and results are unchanged versus the two-sort reference
        monkeypatch.undo()
        arr = np.asarray(objectives, dtype=float)
        ranks = np.empty(len(arr), dtype=int)
        for rank, front in enumerate(fast_non_dominated_sort(arr)):
            ranks[front] = rank
        distances = np.empty(len(arr))
        for front in fast_non_dominated_sort(arr):
            distances[front] = crowding_distance(arr[front])
        ref_rng = np.random.default_rng(7)
        expected = np.empty(8, dtype=int)
        for t in range(8):
            i, j = ref_rng.integers(0, len(arr), size=2)
            expected[t] = (
                i
                if crowded_compare(ranks[i], distances[i], ranks[j], distances[j])
                else j
            )
        np.testing.assert_array_equal(winners, expected)


class TestSteadyEviction:
    def test_matches_environmental_selection(self, rng):
        for _ in range(20):
            objectives = rng.normal(size=(int(rng.integers(2, 15)), 2))
            victim = steady_eviction(objectives)
            survivors = environmental_selection(objectives, len(objectives) - 1)
            assert victim not in set(survivors.tolist())
            assert set(survivors.tolist()) | {victim} == set(range(len(objectives)))

    def test_evicts_dominated_member(self):
        objectives = np.array([[0.0, 1.0], [1.0, 0.0], [5.0, 5.0]])
        assert steady_eviction(objectives) == 2

    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            steady_eviction(np.array([[1.0, 2.0]]))


class TestParetoMask:
    def test_mask_matches_first_front(self, rng):
        objectives = rng.normal(size=(15, 2))
        mask = pareto_front_mask(objectives)
        front = set(fast_non_dominated_sort(objectives)[0].tolist())
        assert set(np.flatnonzero(mask).tolist()) == front

    def test_empty(self):
        assert pareto_front_mask(np.zeros((0, 2))).shape == (0,)
