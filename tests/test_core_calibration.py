"""Tests for engine-behaviour measurement and regime calibration claims."""

import numpy as np
import pytest

from repro.core import PredictionEngine, measure_engine_behaviour, regime_behaviour
from repro.nas.genome import random_genome
from repro.nas.surrogate import REGIMES, sample_curve
from repro.utils.rng import derive_rng
from repro.xfel import BeamIntensity

from tests.conftest import make_concave_curve


class TestMeasureBehaviour:
    def test_clean_curves_all_terminate(self):
        curves = [make_concave_curve(25, rate=0.45, seed=i) for i in range(10)]
        behaviour = measure_engine_behaviour(PredictionEngine(), curves)
        assert behaviour.n_curves == 10
        assert behaviour.percent_terminated == 100.0
        assert behaviour.mean_epochs_saved > 10
        assert behaviour.mean_abs_error < 1.0

    def test_wild_curves_rarely_terminate(self):
        rng = np.random.default_rng(0)
        curves = [
            np.clip(50 + rng.uniform(-30, 30, 25), 0, 100) for _ in range(10)
        ]
        behaviour = measure_engine_behaviour(PredictionEngine(), curves)
        assert behaviour.percent_terminated < 50.0

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            measure_engine_behaviour(PredictionEngine(), [])

    def test_short_curve_rejected(self):
        with pytest.raises(ValueError, match="shorter than budget"):
            measure_engine_behaviour(
                PredictionEngine(), [make_concave_curve(10)], max_epochs=25
            )

    def test_statistics_consistent(self):
        curves = [make_concave_curve(25, rate=0.4, seed=i) for i in range(6)]
        behaviour = measure_engine_behaviour(PredictionEngine(), curves)
        assert behaviour.median_termination_epoch <= behaviour.mean_termination_epoch + 5


class TestRegimeCalibration:
    """The surrogate regimes reproduce the paper's Fig. 8 behaviour.

    These are the library's calibration claims, verified against the
    Table-1 engine over fresh curve banks (independent of any search).
    """

    @pytest.fixture(scope="class")
    def behaviours(self):
        engine = PredictionEngine()
        results = {}
        for intensity in BeamIntensity:
            regime = REGIMES[intensity]

            def factory(i, regime=regime, intensity=intensity):
                rng = derive_rng(90, "calib", intensity.label, i)
                return sample_curve(random_genome(rng), regime, rng, 25)

            results[intensity.label] = regime_behaviour(
                engine, factory, n_curves=120, max_epochs=25
            )
        return results

    def test_low_terminates_late(self, behaviours):
        low = behaviours["low"]
        assert low.mean_termination_epoch > 17.0
        assert low.percent_terminated > 55.0

    def test_medium_terminates_mid(self, behaviours):
        medium = behaviours["medium"]
        assert medium.mean_termination_epoch < 13.5
        assert medium.percent_terminated > 65.0

    def test_high_terminates_early_but_less_often(self, behaviours):
        high = behaviours["high"]
        assert high.mean_termination_epoch < 12.5
        assert (
            high.percent_terminated
            < min(behaviours["low"].percent_terminated,
                  behaviours["medium"].percent_terminated)
        )

    def test_termination_epoch_ordering(self, behaviours):
        assert (
            behaviours["high"].mean_termination_epoch
            < behaviours["medium"].mean_termination_epoch
            < behaviours["low"].mean_termination_epoch
        )

    def test_prediction_errors_bounded(self, behaviours):
        # erratic (collapsing) curves can be terminated before their
        # decline, so predictions overestimate the true final value —
        # a genuine hazard of early termination the regimes preserve.
        # The error stays bounded well below the class-separation scale.
        for label, behaviour in behaviours.items():
            assert behaviour.mean_abs_error < 12.0, label
