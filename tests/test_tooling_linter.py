"""The `a4nn check` linter: per-rule fixtures, suppressions, self-check."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.tooling import (
    Linter,
    all_rules,
    apply_fixes,
    render_json,
    render_sarif,
    run_check,
    write_baseline,
)
from repro.tooling.linter import PARSE_ERROR_ID, SKIPPED_FILE_ID, collect_files
from repro.tooling.rules import inject_catalog, markdown_catalog, rule_ids

SRC = Path(__file__).resolve().parents[1] / "src"
ROOT = SRC.parent


def lint(sources: dict) -> list:
    """Lint in-memory fixtures; sources are dedented automatically."""
    return Linter().lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()}
    ).diagnostics


def rule_hits(diagnostics, rule_id):
    return [d for d in diagnostics if d.rule_id == rule_id]


# -- DET001: RNG discipline ----------------------------------------------------


def test_det001_flags_global_numpy_rng():
    diags = lint({"repro/core/bad.py": """
        import numpy as np
        np.random.seed(0)
        def draw():
            return np.random.rand(3)
    """})
    assert len(rule_hits(diags, "DET001")) == 2


def test_det001_flags_unseeded_default_rng_and_stdlib_random():
    diags = lint({"repro/nas/bad.py": """
        import random
        import numpy as np
        def setup(rng=None):
            rng = rng if rng is not None else np.random.default_rng()
            return rng, random.random()
    """})
    assert len(rule_hits(diags, "DET001")) == 2


def test_det001_allows_seeded_generators_and_rng_module():
    diags = lint({
        "repro/experiments/ok.py": """
            import numpy as np
            rng = np.random.default_rng(42)
            gen = np.random.Generator(np.random.PCG64(7))
        """,
        "repro/utils/rng.py": """
            import numpy as np
            def anything():
                return np.random.default_rng()
        """,
    })
    assert rule_hits(diags, "DET001") == []


# -- DET002: clock discipline --------------------------------------------------


def test_det002_flags_wall_clock_outside_timing():
    diags = lint({"repro/workflow/bad.py": """
        import time
        from datetime import datetime
        def stamp():
            return time.time(), datetime.now()
    """})
    assert len(rule_hits(diags, "DET002")) == 2


def test_det002_exempts_utils_timing():
    diags = lint({"repro/utils/timing.py": """
        import time
        def now():
            return time.perf_counter()
    """})
    assert rule_hits(diags, "DET002") == []


# -- API001: layer forward/backward pair ---------------------------------------


def test_api001_flags_half_a_pair():
    diags = lint({"repro/nn/layers/custom.py": """
        from repro.nn.layers.base import Layer
        class Halfway(Layer):
            def forward(self, x, training=False):
                return x
    """})
    hits = rule_hits(diags, "API001")
    assert len(hits) == 1 and "without backward" in hits[0].message


def test_api001_flags_signature_drift():
    diags = lint({"repro/nn/layers/custom.py": """
        from repro.nn.layers.base import Layer
        class Drifted(Layer):
            def forward(self, inputs, training=False):
                return inputs
            def backward(self, grad_out, extra):
                return grad_out
    """})
    assert len(rule_hits(diags, "API001")) == 2


def test_api001_accepts_conforming_layer_and_indirect_subclass():
    diags = lint({"repro/nn/layers/custom.py": """
        from repro.nn.layers.base import Layer
        class _Base(Layer):
            pass
        class Good(_Base):
            def forward(self, x, training=False):
                return x
            def backward(self, grad_out):
                return grad_out
    """})
    assert rule_hits(diags, "API001") == []


# -- API002: serialization registry --------------------------------------------

_REGISTRY_INIT = """
    from repro.nn.layers.custom import Registered
    LAYER_TYPES = {"Registered": Registered}
"""


def test_api002_flags_unregistered_public_layer():
    diags = lint({
        "repro/nn/layers/__init__.py": _REGISTRY_INIT,
        "repro/nn/layers/custom.py": """
            from repro.nn.layers.base import Layer
            class Registered(Layer):
                def forward(self, x, training=False):
                    return x
                def backward(self, grad_out):
                    return grad_out
            class Orphan(Layer):
                def forward(self, x, training=False):
                    return x
                def backward(self, grad_out):
                    return grad_out
            class _Private(Layer):
                def forward(self, x, training=False):
                    return x
                def backward(self, grad_out):
                    return grad_out
        """,
    })
    hits = rule_hits(diags, "API002")
    assert len(hits) == 1 and "Orphan" in hits[0].message


# -- API003: experiment entrypoint shape ---------------------------------------


def test_api003_flags_missing_entrypoints():
    diags = lint({"repro/experiments/fig3_thing.py": """
        def run_fig3():
            return None
    """})
    messages = " ".join(d.message for d in rule_hits(diags, "API003"))
    assert "format_fig3" in messages and "Fig3Result" in messages
    # run_fig3 exists but is not exported
    assert "__all__" in messages


def test_api003_accepts_complete_module():
    diags = lint({"repro/experiments/fig3_thing.py": """
        __all__ = ["Fig3Result", "run_fig3", "format_fig3"]
        class Fig3Result:
            pass
        def run_fig3():
            return Fig3Result()
        def format_fig3(result):
            return ""
    """})
    assert rule_hits(diags, "API003") == []


# -- NUM001: swallowed broad excepts -------------------------------------------


def test_num001_flags_silent_broad_except():
    diags = lint({"repro/scheduler/bad.py": """
        def quiet():
            try:
                risky()
            except Exception:
                pass
            try:
                risky()
            except:
                return None
    """})
    assert len(rule_hits(diags, "NUM001")) == 2


def test_num001_accepts_narrow_logged_or_reraised():
    diags = lint({"repro/scheduler/ok.py": """
        import logging
        log = logging.getLogger(__name__)
        def loud():
            try:
                risky()
            except ValueError:
                pass
            try:
                risky()
            except Exception as exc:
                log.warning("failed: %s", exc)
            try:
                risky()
            except Exception:
                raise
    """})
    assert rule_hits(diags, "NUM001") == []


# -- NUM002: unguarded division ------------------------------------------------


def test_num002_flags_bare_denominator_in_numeric_code():
    diags = lint({"repro/core/bad.py": """
        def ratio(a, b):
            return a / b
    """})
    assert len(rule_hits(diags, "NUM002")) == 1


def test_num002_accepts_guards_and_foreign_modules():
    diags = lint({
        "repro/core/ok.py": """
            import numpy as np
            def safe(a, b, eps=1e-9):
                clamped = np.maximum(b, eps)
                first = a / clamped
                second = a / (b + eps)
                third = np.where(b > 0, a / b, 0.0)
                b = np.maximum(b, eps)
                fourth = a / b
                return first + second + third + fourth
        """,
        "repro/xfel/out_of_scope.py": """
            def ratio(a, b):
                return a / b
        """,
    })
    assert rule_hits(diags, "NUM002") == []


# -- NUM003: narrow dtypes in nn/ ----------------------------------------------


def test_num003_flags_float32_in_nn():
    diags = lint({"repro/nn/bad.py": """
        import numpy as np
        def narrow(x):
            return x.astype(np.float32), np.zeros(3, dtype="float16")
    """})
    assert len(rule_hits(diags, "NUM003")) == 2


def test_num003_accepts_dtype_policy_module_and_other_packages():
    diags = lint({
        "repro/nn/dtype.py": """
            import numpy as np
            SUPPORTED = ("float32", "float64")
            def narrow(x):
                return x.astype("float32")
        """,
        "repro/xfel/elsewhere.py": """
            import numpy as np
            def narrow(x):
                return x.astype(np.float32)
        """,
    })
    assert rule_hits(diags, "NUM003") == []


# -- PERF001: float64-forcing constructs in nn/ hot paths -----------------------


def test_perf001_flags_float64_forcing_constructs():
    diags = lint({"repro/nn/losses.py": """
        import numpy as np
        def f(x, t):
            t = np.asarray(t, dtype=float)
            w = np.zeros(3, dtype=np.float64)
            y = x.astype(float)
            a = np.empty(2, dtype="float64")
            return t, w, y, a
    """})
    assert len(rule_hits(diags, "PERF001")) == 4


def test_perf001_accepts_policy_module_and_data_derived_dtypes():
    diags = lint({
        "repro/nn/dtype.py": """
            import numpy as np
            DEFAULT_DTYPE = np.dtype("float64")
            WIDE = np.float64
        """,
        "repro/nn/losses.py": """
            import numpy as np
            def f(predictions, targets):
                targets = np.asarray(targets, dtype=predictions.dtype)
                return targets.astype(predictions.dtype)
        """,
        "repro/xfel/physics.py": """
            import numpy as np
            def simulate(x):
                # float64 physics outside nn/ is out of scope
                return np.asarray(x, dtype=np.float64)
        """,
    })
    assert rule_hits(diags, "PERF001") == []


# -- PERF002: pickling-hostile constructs in worker-entry modules ---------------


def test_perf002_flags_lambda_module_rng_and_returned_closure():
    diags = lint({"repro/scheduler/procpool.py": """
        import numpy as np
        rng = np.random.default_rng(42)
        sort_key = lambda job: job.order
        def make_handler(spec):
            def handler(task):
                return spec, task
            return handler
    """})
    assert len(rule_hits(diags, "PERF002")) == 3


def test_perf002_flags_annotated_and_bare_module_rng():
    diags = lint({"repro/xfel/shm.py": """
        import random
        _SHUFFLER: object = random.Random(7)
    """})
    assert len(rule_hits(diags, "PERF002")) == 1


def test_perf002_ignores_clean_worker_code_and_other_modules():
    diags = lint({
        "repro/xfel/shm.py": """
            import numpy as np
            def attach(spec):
                view = np.ndarray(spec.shape)
                view.flags.writeable = False
                return view
        """,
        "repro/nas/evaluation.py": """
            sort_key = lambda ind: ind.model_id
        """,
    })
    assert rule_hits(diags, "PERF002") == []


# -- PERF003: loop-carried allocations in training hot-loop modules -------------


def test_perf003_flags_loop_allocations_in_hot_modules():
    diags = lint({"repro/nn/layers/example.py": """
        import numpy as np
        def backward(grads, k):
            out = None
            for i in range(k):
                g = np.zeros((4, 4))
                h = grads[i].copy()
                while i:
                    t = np.concatenate([g, h])
                    i -= 1
                out = g
            return out
    """})
    assert len(rule_hits(diags, "PERF003")) == 3


def test_perf003_ignores_allocations_outside_loops_and_cold_modules():
    diags = lint({
        "repro/nn/layers/example.py": """
            import numpy as np
            def forward(x):
                # per-call (not per-iteration) allocation is PERF003-clean;
                # the arena migration is tracked per layer, not per call
                cols = np.zeros(x.shape)
                for i in range(3):
                    cols += i
                return cols.copy()
        """,
        "repro/nas/population.py": """
            import numpy as np
            def snapshot(values):
                out = []
                for v in values:
                    out.append(v.copy())
                return out
        """,
    })
    assert rule_hits(diags, "PERF003") == []


def test_perf003_reports_nested_loop_calls_once():
    diags = lint({"repro/nn/trainer.py": """
        import numpy as np
        def epoch(batches):
            for b in batches:
                for x in b:
                    buf = np.empty(x.shape)
    """})
    assert len(rule_hits(diags, "PERF003")) == 1


# -- NUM004: unbounded retry loops ---------------------------------------------


def test_num004_flags_while_true_retry_swallow():
    diags = lint({"repro/workflow/bad.py": """
        def fetch(evaluator, ind):
            while True:
                try:
                    return evaluator.evaluate(ind)
                except RuntimeError:
                    pass
    """})
    assert len(rule_hits(diags, "NUM004")) == 1
    assert "unbounded retry" in rule_hits(diags, "NUM004")[0].message


def test_num004_accepts_bounded_and_escaping_loops():
    diags = lint({
        "repro/workflow/ok.py": """
            def bounded(evaluator, ind, tries=3):
                for _ in range(tries):
                    try:
                        return evaluator.evaluate(ind)
                    except RuntimeError:
                        continue
                raise RuntimeError("exhausted")

            def escapes(evaluator, ind):
                while True:
                    try:
                        return evaluator.evaluate(ind)
                    except RuntimeError:
                        raise

            def breaks_out(queue):
                while True:
                    try:
                        item = queue.get_nowait()
                    except LookupError:
                        pass
                    else:
                        return item
                    break
        """,
    })
    assert rule_hits(diags, "NUM004") == []


def test_num004_exempts_fault_policy_seam():
    diags = lint({"repro/scheduler/faults.py": """
        def spin(evaluator, ind):
            while True:
                try:
                    return evaluator.evaluate(ind)
                except RuntimeError:
                    pass
    """})
    assert rule_hits(diags, "NUM004") == []


# -- LIN001: record schema drift -----------------------------------------------

_RECORDS_FIXTURE = """
    from dataclasses import dataclass
    @dataclass
    class ModelRecord:
        model_id: int
        fitness: float = 0.0
"""


def test_lin001_flags_unknown_attribute_write_and_ctor_kwarg():
    diags = lint({
        "repro/lineage/records.py": _RECORDS_FIXTURE,
        "repro/lineage/tracker.py": """
            from repro.lineage.records import ModelRecord
            class Tracker:
                def _record_for(self, individual) -> ModelRecord:
                    return ModelRecord(model_id=1, bogus_kwarg=2)
                def observe(self, individual):
                    record = self._record_for(individual)
                    record.fitness = 1.0
                    record.not_a_field = "dropped by asdict"
        """,
    })
    hits = rule_hits(diags, "LIN001")
    assert len(hits) == 2
    messages = " ".join(d.message for d in hits)
    assert "bogus_kwarg" in messages and "not_a_field" in messages


def test_lin001_accepts_schema_conforming_writer():
    diags = lint({
        "repro/lineage/records.py": _RECORDS_FIXTURE,
        "repro/lineage/tracker.py": """
            from repro.lineage.records import ModelRecord
            class Tracker:
                def _record_for(self, individual) -> ModelRecord:
                    return ModelRecord(model_id=1)
                def observe(self, individual):
                    record = self._record_for(individual)
                    record.fitness = 1.0
        """,
    })
    assert rule_hits(diags, "LIN001") == []


# -- suppressions ---------------------------------------------------------------


def test_justified_noqa_suppresses_the_diagnostic():
    diags = lint({"repro/core/bad.py": """
        import numpy as np
        np.random.seed(0)  # a4nn: noqa(DET001) -- fixture exercising legacy seeding
    """})
    assert diags == []


def test_unjustified_noqa_is_an_error_and_suppresses_nothing():
    diags = lint({"repro/core/bad.py": """
        import numpy as np
        np.random.seed(0)  # a4nn: noqa(DET001)
    """})
    assert len(rule_hits(diags, "SUP001")) == 1
    assert len(rule_hits(diags, "DET001")) == 1  # original survives


def test_noqa_with_unknown_rule_id_is_an_error():
    diags = lint({"repro/core/odd.py": """
        x = 1  # a4nn: noqa(NOPE99) -- misdirected
    """})
    hits = rule_hits(diags, "SUP001")
    assert len(hits) == 1 and "NOPE99" in hits[0].message


def test_noqa_only_covers_named_rules_on_its_line():
    diags = lint({"repro/core/bad.py": """
        import time
        import numpy as np
        np.random.seed(0)  # a4nn: noqa(DET002) -- wrong rule named
        time.time()
    """})
    assert len(rule_hits(diags, "DET001")) == 1
    assert len(rule_hits(diags, "DET002")) == 1


# -- linter machinery -----------------------------------------------------------


def test_syntax_error_reports_parse_diagnostic():
    diags = lint({"repro/core/broken.py": "def oops(:\n"})
    assert [d.rule_id for d in diags] == [PARSE_ERROR_ID]


def test_select_and_ignore_filter_rules():
    sources = {"repro/core/bad.py": "import numpy as np\nnp.random.seed(0)\n"}
    only_det = Linter(select=["DET001"]).lint_sources(sources).diagnostics
    assert {d.rule_id for d in only_det} == {"DET001"}
    without = Linter(ignore=["DET001"]).lint_sources(sources).diagnostics
    assert rule_hits(without, "DET001") == []
    with pytest.raises(ValueError):
        Linter(select=["NOPE99"])


def test_render_json_is_machine_readable():
    diags = lint({"repro/core/bad.py": "import numpy as np\nnp.random.seed(0)\n"})
    payload = json.loads(render_json(diags))
    assert payload["n_errors"] == len(diags) > 0
    assert payload["diagnostics"][0]["rule"] == "DET001"


def test_collect_files_rejects_missing_paths(tmp_path):
    with pytest.raises(FileNotFoundError):
        collect_files([tmp_path / "nowhere"])


# -- CLI ------------------------------------------------------------------------


def test_cli_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ["DET001", "DET002", "API001", "API002", "API003",
                    "NUM001", "NUM002", "NUM003", "NUM004", "LIN001",
                    "SUP001", "PERF001", "PERF003"]:
        assert rule_id in out


def test_cli_check_exit_codes(tmp_path, capsys):
    bad = tmp_path / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text("import numpy as np\nnp.random.seed(0)\n")
    assert main(["check", str(tmp_path), "--no-cache"]) == 1
    assert "DET001" in capsys.readouterr().out
    assert main(["check", str(tmp_path), "--no-cache", "--format=json"]) == 1
    assert json.loads(capsys.readouterr().out)["n_errors"] == 1
    assert main(["check", str(tmp_path / "nowhere"), "--no-cache"]) == 2


# -- GEN001 / GEN002: parse failures and skipped files ---------------------------


def test_parse_diagnostic_reports_line_col_and_offending_text():
    diags = lint({"repro/core/broken.py": "x = 1\ndef oops(:\n"})
    assert len(diags) == 1
    d = diags[0]
    assert d.rule_id == PARSE_ERROR_ID
    assert d.line == 2
    assert "line 2" in d.message
    assert "def oops(:" in d.message


def test_non_utf8_file_is_skipped_with_warning(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "ok.py").write_text("x = 1\n", encoding="utf-8")
    (pkg / "binary.py").write_bytes(b"\x80\x81\x82 not utf-8")
    result = run_check([pkg])
    skips = [d for d in result.diagnostics if d.rule_id == SKIPPED_FILE_ID]
    assert len(skips) == 1
    assert skips[0].path.endswith("binary.py")
    assert "not valid UTF-8" in skips[0].message
    assert result.exit_code == 0  # a warning, not an error


def test_collect_files_skips_pycache_and_hidden_dirs(tmp_path):
    pkg = tmp_path / "pkg"
    (pkg / "__pycache__").mkdir(parents=True)
    (pkg / ".tox" / "sub").mkdir(parents=True)
    (pkg / "a.py").write_text("x = 1\n")
    (pkg / "__pycache__" / "b.py").write_text("x = 1\n")
    (pkg / ".tox" / "sub" / "c.py").write_text("x = 1\n")
    (pkg / ".hidden.py").write_text("x = 1\n")
    assert collect_files([pkg]) == [pkg / "a.py"]
    # explicitly named files are always included, even under excluded dirs
    explicit = pkg / "__pycache__" / "b.py"
    assert collect_files([explicit]) == [explicit]


# -- suppression edge cases ------------------------------------------------------


def test_noqa_on_the_closing_line_of_a_multiline_statement():
    diags = lint({"repro/core/multi.py": """
        import numpy as np
        value = np.random.rand(
            3,
        )  # a4nn: noqa(DET001) -- fixture: marker on the closing paren line
    """})
    assert rule_hits(diags, "DET001") == []
    assert rule_hits(diags, "SUP001") == []


def test_noqa_on_the_opening_line_of_a_multiline_statement():
    diags = lint({"repro/core/multi.py": """
        import numpy as np
        value = np.random.rand(  # a4nn: noqa(DET001) -- fixture: opening line
            3,
        )
    """})
    assert rule_hits(diags, "DET001") == []
    assert rule_hits(diags, "SUP001") == []


def test_noqa_on_compound_header_does_not_blanket_the_body():
    diags = lint({"repro/core/hdr.py": """
        import numpy as np
        def draw():  # a4nn: noqa(DET001) -- fixture: header marker must not leak
            return np.random.rand()
    """})
    assert len(rule_hits(diags, "DET001")) == 1


def test_stacked_noqa_markers_on_one_line():
    diags = lint({"repro/core/both.py": """
        import time
        import numpy as np
        x = np.random.rand() + time.time()  # a4nn: noqa(DET001) -- fixture rng  # a4nn: noqa(DET002) -- fixture clock
    """})
    assert rule_hits(diags, "DET001") == []
    assert rule_hits(diags, "DET002") == []
    assert rule_hits(diags, "SUP001") == []


def test_stacked_noqa_markers_are_validated_independently():
    diags = lint({"repro/core/both.py": """
        import time
        import numpy as np
        x = np.random.rand() + time.time()  # a4nn: noqa(DET001) -- fixture rng  # a4nn: noqa(DET002)
    """})
    assert rule_hits(diags, "DET001") == []  # the justified marker still works
    assert len(rule_hits(diags, "DET002")) == 1  # the bare one suppresses nothing
    assert len(rule_hits(diags, "SUP001")) == 1


def test_crossfile_finding_suppressed_at_the_source_end():
    diags = lint({
        "repro/nas/evaluation.py": """
            from repro.support import jitter
            def evaluate(genome):
                return jitter(genome)
        """,
        "repro/support.py": """
            import numpy as np
            def jitter(genome):
                return np.random.default_rng().random()  # a4nn: noqa(DET003) -- fixture: vetted draw
        """,
    })
    assert rule_hits(diags, "DET003") == []
    assert len(rule_hits(diags, "DET001")) == 1  # only the named rule is silenced


def test_crossfile_finding_suppressed_at_the_entry_end():
    diags = lint({
        "repro/nas/evaluation.py": """
            from repro.support import jitter
            def evaluate(genome):  # a4nn: noqa(DET003) -- fixture: vetted entry point
                return jitter(genome)
        """,
        "repro/support.py": """
            import numpy as np
            def jitter(genome):
                return np.random.default_rng().random()
        """,
    })
    assert rule_hits(diags, "DET003") == []
    assert len(rule_hits(diags, "DET001")) == 1  # per-file rule still fires at source


# -- README rule catalog ---------------------------------------------------------


def test_readme_rule_catalog_is_in_sync():
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert inject_catalog(readme) == readme, (
        "README rule catalog is stale: run `make readme-rules`"
    )


def test_markdown_catalog_covers_every_registered_rule():
    md = markdown_catalog()
    for rule_id in rule_ids():
        assert f"`{rule_id}`" in md


def test_inject_catalog_requires_markers():
    with pytest.raises(ValueError):
        inject_catalog("no markers here")


def test_cli_check_list_rules_markdown(capsys):
    assert main(["check", "--list-rules", "--format=md"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("| rule | category |")
    assert "`DET003`" in out


def test_cli_check_rejects_md_format_without_list_rules(tmp_path, capsys):
    assert main(["check", str(tmp_path), "--no-cache", "--format=md"]) == 2


# -- SARIF output ----------------------------------------------------------------


def test_render_sarif_shape():
    diags = lint({"repro/core/bad.py": "import numpy as np\nnp.random.seed(0)\n"})
    doc = json.loads(render_sarif(diags, all_rules()))
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "a4nn"
    assert {r["id"] for r in driver["rules"]} == set(rule_ids())
    result = doc["runs"][0]["results"][0]
    assert result["ruleId"] == "DET001"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2
    assert region["startColumn"] == 1  # SARIF columns are 1-based


def test_render_sarif_carries_related_locations():
    diags = lint({
        "repro/nas/evaluation.py": """
            from repro.support import jitter
            def evaluate(genome):
                return jitter(genome)
        """,
        "repro/support.py": """
            import numpy as np
            def jitter(genome):
                return np.random.default_rng().random()
        """,
    })
    doc = json.loads(render_sarif(diags, all_rules()))
    flows = [r for r in doc["runs"][0]["results"] if r["ruleId"] == "DET003"]
    assert len(flows) == 1
    related = flows[0]["relatedLocations"][0]
    assert related["physicalLocation"]["artifactLocation"]["uri"] == "repro/nas/evaluation.py"
    assert "entry point" in related["message"]["text"]


def test_cli_check_format_sarif(tmp_path, capsys):
    bad = tmp_path / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text("import numpy as np\nnp.random.seed(0)\n")
    assert main(["check", str(tmp_path), "--no-cache", "--format=sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"][0]["ruleId"] == "DET001"


# -- baseline --------------------------------------------------------------------


def test_baseline_grandfathers_existing_findings(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    bad = pkg / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(0)\n")
    baseline = tmp_path / "baseline.json"
    first = run_check([tmp_path])
    assert first.exit_code == 1
    write_baseline(first.diagnostics, baseline)
    second = run_check([tmp_path], baseline=baseline)
    assert second.exit_code == 0
    assert len(second.grandfathered) == 1


def test_baseline_is_line_independent_but_count_exact(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    bad = pkg / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(0)\n")
    baseline = tmp_path / "baseline.json"
    write_baseline(run_check([tmp_path]).diagnostics, baseline)
    # the finding moving down the file does not resurrect it ...
    bad.write_text("import numpy as np\nx = 1\nnp.random.seed(0)\n")
    moved = run_check([tmp_path], baseline=baseline)
    assert moved.exit_code == 0
    # ... but a second identical occurrence exceeds the recorded count
    bad.write_text("import numpy as np\nnp.random.seed(0)\nnp.random.seed(0)\n")
    doubled = run_check([tmp_path], baseline=baseline)
    assert doubled.exit_code == 1
    assert len(doubled.grandfathered) == 1
    assert len(doubled.diagnostics) == 1


def test_cli_check_update_baseline_then_green(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import numpy as np\nnp.random.seed(0)\n")
    baseline = tmp_path / "baseline.json"
    args = ["check", str(tmp_path), "--no-cache", "--baseline", str(baseline)]
    assert main(args) == 1
    capsys.readouterr()
    assert main(args + ["--update-baseline"]) == 0
    assert "grandfathering 1 finding(s)" in capsys.readouterr().out
    assert main(args) == 0
    assert "1 grandfathered" in capsys.readouterr().out


def test_cli_check_rejects_malformed_baseline(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"schema": "bogus"}')
    assert main(["check", str(tmp_path), "--no-cache", "--baseline", str(baseline)]) == 2
    assert "a4nn-baseline" in capsys.readouterr().err


# -- autofixes -------------------------------------------------------------------


def test_cli_check_fix_rewrites_seedless_default_rng(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    target = pkg / "draws.py"
    target.write_text(
        "import numpy as np\n\ndef fresh():\n    return np.random.default_rng()\n"
    )
    assert main(
        ["check", str(tmp_path), "--fix", "--cache-dir", str(tmp_path / "cache")]
    ) == 0  # fixed, then re-checked clean
    text = target.read_text()
    assert "fallback_rng()" in text
    assert "from repro.utils.rng import fallback_rng" in text
    assert "default_rng()" not in text
    assert "fixed 1 finding(s)" in capsys.readouterr().out


def test_apply_fixes_appends_dtype_kwarg(tmp_path):
    pkg = tmp_path / "repro" / "nn"
    pkg.mkdir(parents=True)
    target = pkg / "network.py"
    target.write_text(
        "import numpy as np\n\ndef forward(n, dtype):\n    return np.zeros(n)\n"
    )
    result = run_check([tmp_path])
    assert result.exit_code == 1
    outcome = apply_fixes(result.diagnostics)
    assert outcome.n_applied == 1
    assert "np.zeros(n, dtype=dtype)" in target.read_text()
    assert run_check([tmp_path]).exit_code == 0


# -- CLI cache reporting ---------------------------------------------------------


def test_cli_check_reports_cache_stats(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text("x = 1\n")
    cache = ["--cache-dir", str(tmp_path / "cache")]
    assert main(["check", str(tmp_path)] + cache) == 0
    assert "cache: 0 hit(s), 1 analyzed" in capsys.readouterr().out
    assert main(["check", str(tmp_path)] + cache) == 0
    assert "cache: 1 hit(s), 0 analyzed" in capsys.readouterr().out


# -- self-check: the repo passes its own linter (tier-1 regression gate) --------


def test_repo_source_passes_a4nn_check():
    result = run_check([SRC])
    listing = "\n".join(d.render() for d in result.diagnostics)
    assert result.exit_code == 0, f"a4nn check found violations:\n{listing}"
    assert result.n_files > 100  # the whole tree was actually scanned


# -- parallel cold runs (--jobs) -----------------------------------------------


def test_jobs_parallel_run_matches_serial(tmp_path):
    pkg = tmp_path / "repro" / "nn"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("def broken(:\n", encoding="utf-8")
    (pkg / "alias.py").write_text(
        textwrap.dedent("""
            import numpy as np
            def forward(w, cols):
                np.matmul(w, cols, out=cols)
                return cols
        """),
        encoding="utf-8",
    )
    (pkg / "clean.py").write_text("def ok():\n    return 1\n", encoding="utf-8")
    serial = run_check([tmp_path])
    parallel = run_check([tmp_path], jobs=4)
    key = lambda d: (d.path, d.line, d.col, d.rule_id, d.message)
    assert [key(d) for d in serial.diagnostics] == [key(d) for d in parallel.diagnostics]
    assert {d.rule_id for d in parallel.diagnostics} >= {PARSE_ERROR_ID, "ALIAS001"}


def test_jobs_parallel_run_populates_the_cache(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir(parents=True)
    for i in range(4):
        (pkg / f"m{i}.py").write_text("def ok():\n    return 1\n", encoding="utf-8")
    cache_dir = tmp_path / "cache"
    cold = run_check([tmp_path], cache_dir=cache_dir, jobs=2)
    warm = run_check([tmp_path], cache_dir=cache_dir)
    assert cold.n_analyzed == 4
    assert warm.n_cache_hits == 4 and warm.n_analyzed == 0


def test_resolve_jobs_normalization():
    from repro.tooling.linter import resolve_jobs

    assert resolve_jobs(None) is None
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1  # one per CPU
    with pytest.raises(ValueError):
        resolve_jobs(-1)
