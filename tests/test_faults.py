"""Fault-tolerant evaluation: policy, pool semantics, injection, e2e.

Covers the ISSUE-2 acceptance criteria: a seeded end-to-end search with
faults injected into >=20% of evaluations (crash, hang, and NaN modes)
completes all generations, quarantines the faulty candidates with
penalized fitness recorded in lineage, and reproduces identical results
on re-run with the same seed.
"""

import time

import pytest

from repro.core.engine import EngineConfig
from repro.nas import Individual, random_genome
from repro.nas.nsga2 import environmental_selection, pareto_front_mask
from repro.nas.population import Population
from repro.nas.search import NSGANetConfig
from repro.scheduler.faults import (
    EvaluationTimeout,
    FaultInjectingEvaluator,
    FaultInjectionConfig,
    FaultPolicy,
    FaultTolerantEvaluator,
    InjectedFault,
)
from repro.scheduler.pool import FifoWorkerPool
from repro.tooling.sanitizer import NumericalFault
from repro.utils.rng import RngStream
from repro.utils.validation import ValidationError
from repro.workflow import WorkflowConfig, run_workflow


def make_individuals(rng, n, generation=0, first_id=0):
    return [
        Individual(random_genome(rng), first_id + i, generation) for i in range(n)
    ]


class FlakyEvaluator:
    """Fails with ``error`` until attempt ``succeed_at``, then succeeds."""

    max_epochs = 5

    def __init__(self, succeed_at=1, error=None, delay=0.0):
        self.succeed_at = succeed_at
        self.error = error or RuntimeError("boom")
        self.delay = delay
        self.calls = []

    def evaluate(self, individual):
        attempt = individual.eval_attempt
        self.calls.append((individual.model_id, attempt))
        if self.delay:
            time.sleep(self.delay)
        if attempt < self.succeed_at:
            raise self.error
        individual.fitness = 80.0
        individual.flops = 1000
        return individual


class TestFaultPolicy:
    def test_defaults_and_roundtrip(self):
        policy = FaultPolicy(max_retries=3, backoff_seconds=0.5, timeout_seconds=2.0)
        assert FaultPolicy.from_dict(policy.to_dict()) == policy

    def test_validation(self):
        with pytest.raises(ValidationError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            FaultPolicy(timeout_seconds=0.0)
        with pytest.raises(ValidationError):
            FaultPolicy(backoff_seconds=-1.0)

    def test_exponential_backoff(self):
        policy = FaultPolicy(backoff_seconds=0.5)
        assert [policy.backoff_for(a) for a in (0, 1, 2)] == [0.5, 1.0, 2.0]

    def test_injection_config_validation(self):
        with pytest.raises(ValidationError):
            FaultInjectionConfig(rate=1.5)
        with pytest.raises(ValidationError):
            FaultInjectionConfig(rate=0.1, modes=("crash", "explode"))
        cfg = FaultInjectionConfig(rate=0.2, modes=("crash",))
        assert FaultInjectionConfig.from_dict(cfg.to_dict()) == cfg


class TestFaultTolerantEvaluator:
    def test_crash_then_succeed_on_retry(self, rng):
        inner = FlakyEvaluator(succeed_at=1)
        sleeps = []
        wrapped = FaultTolerantEvaluator(
            inner,
            FaultPolicy(max_retries=2, backoff_seconds=0.25),
            sleep=sleeps.append,
        )
        [ind] = make_individuals(rng, 1)
        wrapped.evaluate(ind)
        assert ind.fitness == 80.0 and not ind.quarantined
        # attempt 0 failed, attempt 1 succeeded, with one backoff between
        assert inner.calls == [(0, 0), (0, 1)]
        assert sleeps == [0.25]
        assert [e["action"] for e in ind.fault_events] == ["retry"]
        assert ind.fault_events[0]["kind"] == "crash"

    def test_exhausted_retries_quarantine(self, rng):
        inner = FlakyEvaluator(succeed_at=99)
        policy = FaultPolicy(max_retries=2, quarantine_fitness=0.0)
        wrapped = FaultTolerantEvaluator(inner, policy)
        [ind] = make_individuals(rng, 1)
        wrapped.evaluate(ind)
        assert ind.quarantined and ind.evaluated
        assert ind.fitness == policy.quarantine_fitness
        assert ind.flops == policy.quarantine_flops
        assert ind.result is None
        assert [e["action"] for e in ind.fault_events] == [
            "retry",
            "retry",
            "quarantine",
        ]

    def test_timeout_hits_hanging_evaluation(self, rng):
        inner = FlakyEvaluator(succeed_at=0, delay=0.5)
        wrapped = FaultTolerantEvaluator(
            inner, FaultPolicy(max_retries=0, timeout_seconds=0.05)
        )
        [ind] = make_individuals(rng, 1)
        wrapped.evaluate(ind)
        assert ind.quarantined
        assert ind.fault_events[0]["kind"] == "timeout"
        # the abandoned thread finishes against a shadow, never the real
        # individual: quarantined objectives must survive it
        time.sleep(0.6)
        assert ind.fitness == wrapped.policy.quarantine_fitness

    def test_numerical_fault_skips_retries_by_default(self, rng):
        fault = NumericalFault("nonfinite-loss", "NaN loss", epoch=3)
        inner = FlakyEvaluator(succeed_at=99, error=fault)
        wrapped = FaultTolerantEvaluator(inner, FaultPolicy(max_retries=3))
        [ind] = make_individuals(rng, 1)
        wrapped.evaluate(ind)
        assert ind.quarantined
        assert len(inner.calls) == 1  # no retries burned on NaN
        event = ind.fault_events[0]
        assert event["kind"] == "numerical" and event["action"] == "quarantine"
        assert event["detail"]["kind"] == "nonfinite-loss"

    def test_numerical_fault_retried_when_opted_in(self, rng):
        fault = NumericalFault("nonfinite-loss", "NaN loss")
        inner = FlakyEvaluator(succeed_at=1, error=fault)
        wrapped = FaultTolerantEvaluator(
            inner, FaultPolicy(max_retries=2, retry_numerical=True)
        )
        [ind] = make_individuals(rng, 1)
        wrapped.evaluate(ind)
        assert not ind.quarantined and ind.fitness == 80.0

    def test_on_event_callback_receives_every_decision(self, rng):
        seen = []
        inner = FlakyEvaluator(succeed_at=99)
        wrapped = FaultTolerantEvaluator(
            inner,
            FaultPolicy(max_retries=1),
            on_event=lambda ind, event: seen.append((ind.model_id, event["action"])),
        )
        [ind] = make_individuals(rng, 1)
        wrapped.evaluate(ind)
        assert seen == [(0, "retry"), (0, "quarantine")]

    def test_quarantined_dominated_in_selection(self, rng):
        individuals = make_individuals(rng, 4)
        for i, ind in enumerate(individuals[:3]):
            ind.fitness = 60.0 + i
            ind.flops = 10_000 + i
        policy = FaultPolicy()
        FaultTolerantEvaluator(FlakyEvaluator(succeed_at=99), FaultPolicy(max_retries=0)).evaluate(
            individuals[3]
        )
        population = Population(individuals)
        mask = pareto_front_mask(population.objective_array())
        assert not mask[3]  # quarantined candidate is never pareto-optimal
        survivors = environmental_selection(population.objective_array(), 3)
        assert 3 not in set(int(i) for i in survivors)
        assert policy.quarantine_flops > 10**12


class TestFaultInjection:
    def test_injection_is_deterministic(self, rng):
        config = FaultInjectionConfig(rate=0.5, modes=("crash",), hang_seconds=0.0)

        def outcomes():
            inner = FlakyEvaluator(succeed_at=0)
            injector = FaultInjectingEvaluator(inner, config, RngStream(3))
            results = []
            for ind in make_individuals(rng, 10):
                try:
                    injector.evaluate(ind)
                    results.append("ok")
                except InjectedFault as exc:
                    results.append(exc.mode)
            return results

        first, second = outcomes(), outcomes()
        assert first == second
        assert "crash" in first and "ok" in first

    def test_retry_attempt_redraws_injection(self, rng):
        # rate 1.0 on attempt 0 only: we check the attempt number feeds
        # the draw by observing that different attempts use different
        # streams (a retried attempt can escape a sabotaged first draw
        # only if its decision is independent)
        config = FaultInjectionConfig(rate=0.5, modes=("crash",))
        inner = FlakyEvaluator(succeed_at=0)
        injector = FaultInjectingEvaluator(inner, config, RngStream(3))
        wrapped = FaultTolerantEvaluator(injector, FaultPolicy(max_retries=4))
        individuals = make_individuals(rng, 10)
        for ind in individuals:
            wrapped.evaluate(ind)
        assert all(ind.evaluated for ind in individuals)
        # with 4 retries at 50% rate, some candidate must have recovered
        retried = [ind for ind in individuals if ind.fault_events]
        recovered = [ind for ind in retried if not ind.quarantined]
        assert retried and recovered

    def test_nan_mode_raises_numerical_fault(self, rng):
        config = FaultInjectionConfig(rate=1.0, modes=("nan",))
        injector = FaultInjectingEvaluator(
            FlakyEvaluator(succeed_at=0), config, RngStream(0)
        )
        [ind] = make_individuals(rng, 1)
        with pytest.raises(NumericalFault):
            injector.evaluate(ind)

    def test_hang_mode_trips_timeout(self, rng):
        config = FaultInjectionConfig(rate=1.0, modes=("hang",), hang_seconds=0.5)
        injector = FaultInjectingEvaluator(
            FlakyEvaluator(succeed_at=0), config, RngStream(0)
        )
        wrapped = FaultTolerantEvaluator(
            injector, FaultPolicy(max_retries=0, timeout_seconds=0.05)
        )
        [ind] = make_individuals(rng, 1)
        start = time.monotonic()
        wrapped.evaluate(ind)
        assert time.monotonic() - start < 0.4  # did not wait out the hang
        assert ind.quarantined and ind.fault_events[0]["kind"] == "timeout"


class TestPoolFailureSemantics:
    class NthFails:
        max_epochs = 1

        def __init__(self, failing_ids):
            self.failing_ids = set(failing_ids)

        def evaluate(self, individual):
            if individual.model_id in self.failing_ids:
                raise RuntimeError(f"boom {individual.model_id}")
            individual.fitness = 50.0
            individual.flops = 1
            return individual

    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_generation_settles_before_raising(self, rng, n_workers):
        pool = FifoWorkerPool(self.NthFails({0}), n_workers=n_workers)
        individuals = make_individuals(rng, 5)
        with pytest.raises(RuntimeError, match="boom 0"):
            pool.evaluate_generation(individuals)
        # jobs after the failure still ran — identical on both paths
        assert all(ind.evaluated for ind in individuals[1:])
        assert pool.reports[-1].n_jobs == 5

    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_multiple_errors_raise_exception_group(self, rng, n_workers):
        pool = FifoWorkerPool(self.NthFails({1, 3}), n_workers=n_workers)
        individuals = make_individuals(rng, 5)
        with pytest.raises(ExceptionGroup) as excinfo:
            pool.evaluate_generation(individuals)
        messages = sorted(str(e) for e in excinfo.value.exceptions)
        assert messages == ["boom 1", "boom 3"]

    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_policy_quarantines_instead_of_raising(self, rng, n_workers):
        pool = FifoWorkerPool(
            self.NthFails({2}), n_workers=n_workers, policy=FaultPolicy(max_retries=1)
        )
        individuals = make_individuals(rng, 5)
        pool.evaluate_generation(individuals)  # does not raise
        assert individuals[2].quarantined
        assert all(ind.evaluated for ind in individuals)


def faulty_workflow_config(seed=11, rate=0.4):
    """A small surrogate run with all three injection modes active."""
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=5,
            offspring_per_generation=5,
            generations=4,
            max_epochs=10,
        ),
        engine=EngineConfig(e_pred=10),
        seed=seed,
        faults=FaultPolicy(max_retries=1, timeout_seconds=0.5),
        fault_injection=FaultInjectionConfig(
            rate=rate, modes=("crash", "hang", "nan"), hang_seconds=0.75
        ),
    )


class TestEndToEnd:
    """The ISSUE-2 acceptance run (shared across assertions via fixture)."""

    @pytest.fixture(scope="class")
    def faulty_run(self):
        return run_workflow(faulty_workflow_config())

    def test_search_completes_all_generations(self, faulty_run):
        config = faulty_workflow_config()
        assert len(faulty_run.search.archive) == config.nas.total_evaluations
        assert len(faulty_run.search.generations) == config.nas.generations

    def test_faults_were_actually_injected_and_quarantined(self, faulty_run):
        records = faulty_run.tracker.all_records()
        faulted = [r for r in records if r.fault_events]
        assert len(faulted) >= 0.2 * len(records)  # >=20% of evaluations hit
        kinds = {e["kind"] for r in faulted for e in r.fault_events}
        assert {"crash", "timeout", "numerical"} <= kinds
        quarantined = [r for r in records if r.quarantined]
        assert quarantined
        assert faulty_run.search.n_quarantined == len(quarantined)

    def test_quarantine_recorded_with_penalized_fitness(self, faulty_run):
        policy = faulty_workflow_config().faults
        for record in faulty_run.tracker.all_records():
            if record.quarantined:
                assert record.fitness == policy.quarantine_fitness
                assert record.flops == policy.quarantine_flops
                assert record.fault_events[-1]["action"] == "quarantine"

    def test_epochs_saved_metric_stays_honest(self, faulty_run):
        search = faulty_run.search
        completed = [m for m in search.archive if m.result]
        assert search.epoch_budget == 10 * len(completed)
        assert 0 <= search.total_epochs_saved <= search.epoch_budget
        assert 0.0 <= faulty_run.epochs_saved_fraction() <= 1.0
        per_generation = sum(g.epochs_saved for g in search.generations)
        assert per_generation == search.total_epochs_saved

    def test_rerun_is_bit_identical(self, faulty_run):
        def trail(result):
            return [
                (
                    r.model_id,
                    r.generation,
                    r.fitness,
                    r.flops,
                    r.epochs_trained,
                    r.quarantined,
                    [
                        (e["attempt"], e["kind"], e["action"])
                        for e in r.fault_events
                    ],
                    r.fitness_history,
                )
                for r in result.tracker.all_records()
            ]

        rerun = run_workflow(faulty_workflow_config())
        assert trail(rerun) == trail(faulty_run)

    def test_config_roundtrips_through_json(self):
        config = faulty_workflow_config()
        restored = WorkflowConfig.from_dict(config.to_dict())
        assert restored.faults == config.faults
        assert restored.fault_injection == config.fault_injection

    def test_injection_without_policy_rejected(self):
        with pytest.raises(ValidationError, match="fault policy"):
            WorkflowConfig(
                fault_injection=FaultInjectionConfig(rate=0.2),
            )


class TestBudgetAudit:
    """ISSUE-2 satellite: the epochs-saved budget vs the archive."""

    def test_archive_counts_every_evaluated_model_without_faults(self):
        config = WorkflowConfig(
            nas=NSGANetConfig(
                population_size=4,
                offspring_per_generation=4,
                generations=3,
                max_epochs=10,
            ),
            engine=EngineConfig(e_pred=10),
            seed=5,
        )
        result = run_workflow(config)
        assert len(result.search.archive) == config.nas.total_evaluations
        assert result.search.epoch_budget == 10 * config.nas.total_evaluations
        assert 0 <= result.search.total_epochs_saved <= result.search.epoch_budget

    def test_resumed_run_budget_matches_uninterrupted(self, tmp_path):
        from repro.lineage.commons import DataCommons
        from repro.workflow.resume import rebuild_search_state

        config = faulty_workflow_config(seed=23)
        commons = DataCommons(tmp_path / "commons")
        full = run_workflow(config, commons_path=commons.root)
        records = commons.load_models(full.run_id)
        state = rebuild_search_state(
            records,
            population_size=config.nas.population_size,
            offspring_per_generation=config.nas.offspring_per_generation,
        )
        # every evaluated model (quarantined included) is in the rebuilt archive
        assert len(state.archive) == len(full.search.archive)
        rebuilt_saved = sum(g.epochs_saved for g in state.generation_stats)
        assert rebuilt_saved == full.search.total_epochs_saved
        rebuilt_quarantined = sum(
            1 for m in state.archive if m.quarantined
        )
        assert rebuilt_quarantined == full.search.n_quarantined
