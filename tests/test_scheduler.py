"""Tests for the resource manager: cost model, FIFO scheduling, DES, pool."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, PredictionEngine
from repro.nas import NSGANet, NSGANetConfig, SurrogateEvaluator
from repro.scheduler import (
    EpochCostModel,
    FifoWorkerPool,
    Gpu,
    GpuPool,
    Job,
    schedule_generation,
    schedule_run,
    simulate_walltime,
)
from repro.scheduler.simulator import jobs_by_generation
from repro.utils.rng import RngStream
from repro.xfel import BeamIntensity


class TestCostModel:
    def test_mean_linear_in_flops(self):
        model = EpochCostModel(jitter=0.0)
        t1 = model.mean_epoch_seconds(1e6)
        t2 = model.mean_epoch_seconds(2e6)
        assert t2 - t1 == pytest.approx(model.seconds_per_flop_image * 1e6 * model.n_images)

    def test_fixed_floor(self):
        model = EpochCostModel(jitter=0.0)
        assert model.mean_epoch_seconds(0) == model.fixed_seconds

    def test_jitter_zero_deterministic(self, rng):
        model = EpochCostModel(jitter=0.0)
        draws = model.sample_epoch_seconds(1e6, rng, size=5)
        assert np.all(draws == model.mean_epoch_seconds(1e6))

    def test_jitter_positive_varies_but_positive(self, rng):
        model = EpochCostModel(jitter=0.2)
        draws = model.sample_epoch_seconds(1e6, rng, size=100)
        assert np.std(draws) > 0
        assert np.all(draws > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EpochCostModel(fixed_seconds=-1)
        with pytest.raises(ValueError):
            EpochCostModel(n_images=0)


class TestGpuPool:
    def test_run_advances_availability(self):
        gpu = Gpu(0)
        finish = gpu.run("job", 0.0, 10.0)
        assert finish == 10.0
        assert gpu.available_at == 10.0
        assert gpu.busy_seconds == 10.0
        assert gpu.jobs == ["job"]

    def test_cannot_start_while_busy(self):
        gpu = Gpu(0)
        gpu.run("a", 0.0, 10.0)
        with pytest.raises(ValueError, match="busy"):
            gpu.run("b", 5.0, 1.0)

    def test_next_free_picks_earliest(self):
        pool = GpuPool(3)
        pool.gpus[0].run("a", 0.0, 10.0)
        pool.gpus[1].run("b", 0.0, 5.0)
        assert pool.next_free().index == 2
        pool.gpus[2].run("c", 0.0, 20.0)
        assert pool.next_free().index == 1

    def test_barrier_advance(self):
        pool = GpuPool(2)
        pool.gpus[0].run("a", 0.0, 3.0)
        pool.advance_all(10.0)
        assert all(g.available_at == 10.0 for g in pool)

    def test_utilization(self):
        pool = GpuPool(2)
        pool.gpus[0].run("a", 0.0, 10.0)
        assert pool.utilization() == pytest.approx(0.5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            GpuPool(0)


class TestFifoScheduling:
    def test_single_gpu_serializes(self):
        jobs = [Job(i, (5.0,)) for i in range(4)]
        result = schedule_run([jobs], 1)
        assert result.makespan == pytest.approx(20.0)
        assert result.utilization == pytest.approx(1.0)
        starts = [p.start for p in result.placements]
        assert starts == [0.0, 5.0, 10.0, 15.0]

    def test_fifo_order_on_multiple_gpus(self):
        # durations 10, 1, 1, 1 on 2 gpus: jobs 1-3 chain on gpu 1
        jobs = [Job(0, (10.0,)), Job(1, (1.0,)), Job(2, (1.0,)), Job(3, (1.0,))]
        result = schedule_run([jobs], 2)
        placements = {p.job_id: p for p in result.placements}
        assert placements[0].gpu == 0
        assert placements[1].gpu == 1 and placements[2].gpu == 1 and placements[3].gpu == 1
        assert result.makespan == pytest.approx(10.0)

    def test_generation_barrier_creates_idle(self):
        # gen 1: one long + one short job on 2 gpus; gen 2 cannot start early
        gen1 = [Job(0, (10.0,)), Job(1, (2.0,))]
        gen2 = [Job(2, (1.0,)), Job(3, (1.0,))]
        result = schedule_run([gen1, gen2], 2)
        placements = {p.job_id: p for p in result.placements}
        assert placements[2].start == pytest.approx(10.0)
        assert placements[3].start == pytest.approx(10.0)
        assert result.idle_seconds == pytest.approx(8.0 + 0.0)
        assert result.generation_ends == [pytest.approx(10.0), pytest.approx(11.0)]

    def test_work_conservation(self, rng):
        generations = [
            [Job(g * 10 + i, tuple(rng.uniform(1, 5, 3))) for i in range(7)]
            for g in range(3)
        ]
        total_work = sum(j.duration for gen in generations for j in gen)
        for n_gpus in (1, 2, 4):
            result = schedule_run(generations, n_gpus)
            assert result.busy_seconds == pytest.approx(total_work)
            assert result.makespan >= total_work / n_gpus - 1e-9
            assert result.makespan <= total_work + 1e-9

    def test_more_gpus_never_slower(self, rng):
        generations = [
            [Job(i, tuple(rng.uniform(1, 10, 5))) for i in range(10)]
        ]
        makespans = [schedule_run(generations, n).makespan for n in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(makespans, makespans[1:]))

    def test_job_validation(self):
        with pytest.raises(ValueError):
            Job(0, (-1.0,))


class TestWallTimeSimulation:
    @pytest.fixture(scope="class")
    def search_result(self):
        config = NSGANetConfig(
            population_size=4, offspring_per_generation=4, generations=3, max_epochs=10
        )
        evaluator = SurrogateEvaluator(
            BeamIntensity.MEDIUM,
            PredictionEngine(EngineConfig(e_pred=10)),
            max_epochs=10,
            rng_stream=RngStream(0),
        )
        return NSGANet(config, evaluator, rng_stream=RngStream(0)).run()

    def test_jobs_grouped_by_generation(self, search_result):
        generations = jobs_by_generation(search_result)
        assert len(generations) == 3
        assert [len(g) for g in generations] == [4, 4, 4]

    def test_four_gpus_faster_than_one(self, search_result):
        w1 = simulate_walltime(search_result, 1)
        w4 = simulate_walltime(search_result, 4)
        assert w4.wall_seconds < w1.wall_seconds
        speedup = w1.wall_seconds / w4.wall_seconds
        assert 2.0 < speedup <= 4.0

    def test_single_gpu_fully_utilized(self, search_result):
        w1 = simulate_walltime(search_result, 1)
        assert w1.utilization == pytest.approx(1.0)
        assert w1.idle_seconds == pytest.approx(0.0, abs=1e-6)

    def test_overhead_included_when_requested(self, search_result):
        with_overhead = simulate_walltime(search_result, 1, include_engine_overhead=True)
        without = simulate_walltime(search_result, 1, include_engine_overhead=False)
        assert with_overhead.wall_seconds >= without.wall_seconds
        assert with_overhead.engine_overhead_seconds > 0
        assert without.engine_overhead_seconds == 0.0

    def test_total_epochs_match_search(self, search_result):
        report = simulate_walltime(search_result, 2)
        assert report.total_epochs == search_result.total_epochs_trained


class TestFifoWorkerPool:
    class SleepEvaluator:
        max_epochs = 1

        def evaluate(self, individual):
            individual.fitness = 50.0
            individual.flops = 1
            return individual

    def test_serial_and_parallel_complete_all(self, rng):
        from repro.nas import Individual, random_genome

        for workers in (1, 3):
            pool = FifoWorkerPool(self.SleepEvaluator(), n_workers=workers)
            individuals = [
                Individual(random_genome(rng), i, 0) for i in range(7)
            ]
            pool.evaluate_generation(individuals)
            assert all(ind.fitness == 50.0 for ind in individuals)
            assert pool.reports[-1].n_jobs == 7
            assert pool.total_wall_seconds > 0

    def test_exceptions_propagate(self, rng):
        from repro.nas import Individual, random_genome

        class FailingEvaluator:
            max_epochs = 1

            def evaluate(self, individual):
                raise RuntimeError("boom")

        pool = FifoWorkerPool(FailingEvaluator(), n_workers=2)
        with pytest.raises(RuntimeError, match="boom"):
            pool.evaluate_generation(
                [Individual(random_genome(rng), 0, 0)]
            )

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            FifoWorkerPool(self.SleepEvaluator(), n_workers=0)
