"""Structural tests on the surrogate curve regimes and sub-populations."""

import numpy as np
import pytest

from repro.nas.genome import Genome, random_genome
from repro.nas.surrogate import REGIMES, CurveRegime, sample_curve
from repro.utils.rng import derive_rng
from repro.xfel import BeamIntensity


class TestRegimeTable:
    def test_all_intensities_have_regimes(self):
        assert set(REGIMES) == set(BeamIntensity)

    def test_parameter_sanity(self):
        for intensity, regime in REGIMES.items():
            lo_a, hi_a = regime.asymptote_range
            assert 50.0 < lo_a < hi_a <= 100.0, intensity
            lo_k, hi_k = regime.rate_range
            assert 0.0 < lo_k < hi_k < 2.0, intensity
            assert 0.0 <= regime.erratic_probability <= 1.0
            assert 0.0 <= regime.fail_probability <= 1.0
            assert regime.clean_sigma > 0 and regime.erratic_sigma > 0

    def test_learning_rate_ordering_matches_noise_physics(self):
        """Cleaner data → faster, cleaner learning curves."""
        low, med, high = (
            REGIMES[BeamIntensity.LOW],
            REGIMES[BeamIntensity.MEDIUM],
            REGIMES[BeamIntensity.HIGH],
        )
        assert low.rate_range[1] < med.rate_range[1] <= high.rate_range[1] + 0.2
        assert low.clean_sigma > med.clean_sigma > high.clean_sigma


class TestSubPopulations:
    def _curves(self, regime, n, seed=0):
        out = []
        for i in range(n):
            rng = derive_rng(seed, "sub", i)
            out.append(sample_curve(random_genome(rng), regime, rng, 25))
        return out

    def test_fail_probability_one_gives_flat_curves(self, rng):
        regime = CurveRegime(
            asymptote_range=(95.0, 100.0),
            rate_range=(0.3, 0.5),
            start_range=(50.0, 60.0),
            clean_sigma=0.5,
            erratic_probability=0.0,
            erratic_sigma=1.0,
            fail_probability=10.0,  # scaled by capacity but always >= 1
        )
        for curve in self._curves(regime, 10):
            assert abs(curve.mean() - 50.0) < 5.0
            assert curve.std() < 3.0

    def test_zero_fail_zero_erratic_gives_rising_curves(self):
        regime = CurveRegime(
            asymptote_range=(95.0, 100.0),
            rate_range=(0.3, 0.5),
            start_range=(50.0, 60.0),
            clean_sigma=0.2,
            erratic_probability=0.0,
            erratic_sigma=1.0,
            fail_probability=0.0,
        )
        for curve in self._curves(regime, 10):
            assert curve[-1] > curve[0] + 20.0
            # approximately monotone with tiny noise
            assert np.mean(np.diff(curve) >= -1.0) > 0.9

    def test_erratic_curves_peak_then_decline(self):
        regime = CurveRegime(
            asymptote_range=(95.0, 100.0),
            rate_range=(0.4, 0.6),
            start_range=(55.0, 65.0),
            clean_sigma=0.2,
            erratic_probability=1.0,
            erratic_sigma=0.3,
            fail_probability=0.0,
        )
        declined = 0
        for curve in self._curves(regime, 10):
            if curve[-1] < curve.max() - 5.0:
                declined += 1
        assert declined >= 8  # collapse is the defining feature

    def test_curves_always_in_bounds(self):
        for regime in REGIMES.values():
            for curve in self._curves(regime, 15):
                assert np.all((curve >= 0.0) & (curve <= 100.0))

    def test_deterministic_per_rng_state(self):
        genome = Genome.from_bits((1, 0) * 10 + (1,), (4, 4, 4))
        regime = REGIMES[BeamIntensity.MEDIUM]
        a = sample_curve(genome, regime, derive_rng(3, "x"), 25)
        b = sample_curve(genome, regime, derive_rng(3, "x"), 25)
        np.testing.assert_array_equal(a, b)
