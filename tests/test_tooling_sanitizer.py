"""The runtime numerical sanitizer and its workflow integration."""

import numpy as np
import pytest

from repro.lineage.tracker import LineageTracker
from repro.nas.evaluation import TrainingEvaluator
from repro.nas.genome import random_genome
from repro.nas.population import Individual
from repro.nn import Dense, Flatten, Network, ReLU, Trainer
from repro.nn.layers.base import Layer
from repro.nn.losses import Loss
from repro.tooling.sanitizer import NumericalFault, Sanitizer


def dense_net(rng, size=16):
    return Network(
        [Flatten(), Dense(size * size, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)],
        input_shape=(1, size, size),
        name="sanitized-net",
    )


def make_trainer(rng, tiny_dataset, **kwargs):
    net = dense_net(rng)
    trainer = Trainer(
        net,
        tiny_dataset.x_train,
        tiny_dataset.y_train,
        tiny_dataset.x_test,
        tiny_dataset.y_test,
        batch_size=16,
        rng=rng,
        **kwargs,
    )
    return net, trainer


class NaNLoss(Loss):
    def __call__(self, predictions, targets):
        return float("nan"), np.zeros_like(predictions)


class TestNumericalFault:
    def test_to_dict_round_trips_context(self):
        fault = NumericalFault(
            "nonfinite-loss",
            "loss became nan",
            model="m7",
            epoch=3,
            layer=2,
            detail={"loss": "nan"},
        )
        payload = fault.to_dict()
        assert payload == {
            "kind": "nonfinite-loss",
            "message": "loss became nan",
            "model": "m7",
            "epoch": 3,
            "layer": 2,
            "detail": {"loss": "nan"},
        }

    def test_is_a_runtime_error(self):
        assert issubclass(NumericalFault, RuntimeError)


class TestSanitizerHooks:
    def test_clean_epoch_passes_and_counts_checks(self, rng, tiny_dataset):
        net, trainer = make_trainer(rng, tiny_dataset)
        sanitizer = Sanitizer().watch(net)
        trainer.sanitizer = sanitizer
        trainer.train()
        assert sanitizer.n_checks > 0
        assert sanitizer.epoch == 1
        assert sanitizer.model == "sanitized-net"

    def test_nan_loss_raises_with_epoch_context(self, rng, tiny_dataset):
        net, trainer = make_trainer(rng, tiny_dataset, loss=NaNLoss())
        trainer.sanitizer = Sanitizer().watch(net)
        with pytest.raises(NumericalFault) as excinfo:
            trainer.train()
        assert excinfo.value.kind == "nonfinite-loss"
        assert excinfo.value.epoch == 1

    def test_nan_weight_raises_nonfinite_activation(self, rng, tiny_dataset):
        net, trainer = make_trainer(rng, tiny_dataset)
        trainer.sanitizer = Sanitizer().watch(net)
        trainer.train()  # epoch 1 is clean
        dense = net.layers[1]
        dense.params["weight"].value[0, 0] = np.nan
        with pytest.raises(NumericalFault) as excinfo:
            trainer.train()
        fault = excinfo.value
        assert fault.kind == "nonfinite-activation"
        assert fault.epoch == 2
        assert fault.layer == 1
        assert fault.detail["n_nan"] > 0

    def test_nonfinite_parameter_gradient_detected(self, rng):
        net = dense_net(rng)
        sanitizer = Sanitizer().watch(net)
        next(iter(net.parameters()))[1].grad.fill(np.inf)
        with pytest.raises(NumericalFault) as excinfo:
            sanitizer.check_parameter_gradients(net)
        assert excinfo.value.kind == "nonfinite-parameter-gradient"
        assert excinfo.value.detail["n_inf"] > 0

    def test_nonfinite_backward_gradient_detected(self, rng):
        net = dense_net(rng)
        sanitizer = Sanitizer().watch(net)
        grad = np.full((4, 8), np.nan)
        with pytest.raises(NumericalFault) as excinfo:
            sanitizer.after_layer_backward(2, net.layers[2], grad)
        assert excinfo.value.kind == "nonfinite-gradient"

    def test_shape_contract_violation_detected(self, rng):
        class LyingLayer(Layer):
            def forward(self, x, training=False):
                return x[:, :1]

            def backward(self, grad_out):
                return grad_out

            def output_shape(self, input_shape):
                return input_shape  # claims identity, halves the features

        layer = LyingLayer()
        sanitizer = Sanitizer(model="liar")
        x_in = np.ones((2, 4))
        x_out = layer.forward(x_in)
        with pytest.raises(NumericalFault) as excinfo:
            sanitizer.after_layer_forward(0, layer, x_in, x_out)
        fault = excinfo.value
        assert fault.kind == "shape-mismatch"
        assert fault.detail == {"expected": [4], "actual": [1]}

    def test_shape_check_can_be_disabled(self, rng):
        sanitizer = Sanitizer(check_shapes=False)

        class Opaque:
            def output_shape(self, input_shape):
                raise AssertionError("must not be consulted")

        sanitizer.after_layer_forward(0, Opaque(), np.ones((2, 4)), np.ones((2, 1)))
        assert sanitizer.n_checks == 1

    def test_detached_network_pays_no_sanitizer_cost(self, rng, tiny_dataset):
        net, trainer = make_trainer(rng, tiny_dataset)
        assert net.sanitizer is None and trainer.sanitizer is None
        trainer.train()  # runs the fast path


class TestWorkflowIntegration:
    """Acceptance: a NaN loss under ``sanitize=True`` aborts the model,
    lands in its lineage record, and never pollutes fitness history H."""

    def test_fault_recorded_in_lineage_not_fitness_history(
        self, rng, tiny_dataset, monkeypatch
    ):
        monkeypatch.setattr("repro.nn.trainer.SoftmaxCrossEntropy", NaNLoss)
        tracker = LineageTracker()
        evaluator = TrainingEvaluator(
            tiny_dataset,
            engine=None,
            max_epochs=2,
            rng_stream=None,
            observers=[tracker.observe_epoch],
            sanitize=True,
            on_fault=tracker.observe_fault,
        )
        individual = Individual(
            genome=random_genome(rng), model_id=17, generation=0
        )
        with pytest.raises(NumericalFault) as excinfo:
            evaluator.evaluate(individual)
        assert excinfo.value.kind == "nonfinite-loss"

        record = tracker.records[17]
        assert record.fault is not None
        assert record.fault["kind"] == "nonfinite-loss"
        assert record.fault["epoch"] == 1
        # the poisoned measurement never reached H
        assert record.fitness_history == []
        assert all(np.isfinite(e["validation_accuracy"]) for e in record.epochs)
        # the individual was never scored
        assert individual.fitness is None
        assert individual.result is None

    def test_sanitize_off_keeps_legacy_behaviour(self, rng, tiny_dataset):
        evaluator = TrainingEvaluator(
            tiny_dataset, engine=None, max_epochs=1, sanitize=False
        )
        individual = Individual(genome=random_genome(rng), model_id=3, generation=0)
        evaluator.evaluate(individual)
        assert individual.result is not None
        assert individual.fitness >= 0.0
