"""The buffer-arena kernel fast path (repro.nn.arena).

Three families of guarantees:

* **Byte-exact layers** — dense, pooling, activations, batch norm, and
  both optimizers produce bit-identical results with and without a
  bound arena (their arena rewrites decompose the very same expression
  trees with ``out=``).
* **Tolerance-equivalent conv / networks** — the arena conv runs its
  GEMMs on a different (channel-major) layout, so accumulation order
  differs; gradients are compared after normalizing by the *global*
  gradient scale (a conv bias feeding a BatchNorm has a mathematically
  zero gradient, so per-parameter relative error is meaningless there).
* **Steady state** — after the first epoch the arena stops growing, and
  repeated epochs allocate no new large arrays.
"""

import tracemalloc

import numpy as np
import pytest

from repro.nas.decoder import DecoderConfig, decode_genome
from repro.nas.genome import random_genome
from repro.nn.arena import BufferArena
from repro.nn.dtype import resolve_dtype
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    LeakyReLU,
    MaxPool2D,
    ReLU,
)
from repro.nn.layers.conv import col2im, im2col
from repro.nn.optimizers import SGD, Adam
from repro.nn.trainer import Trainer
from tests.test_nn_gradcheck import DTYPE_GRADCHECK, assert_gradients_match


def _pair(factory, dtype):
    """Identical twin layers, the second arena-bound."""
    legacy = factory(np.random.default_rng(11), dtype)
    arena = factory(np.random.default_rng(11), dtype)
    arena.bind_arena(BufferArena(dtype), owner="t")
    return legacy, arena


def _roundtrip(layer, x, g):
    out = layer.forward(x, training=True)
    grad_in = layer.backward(g)
    return out, grad_in


# -- conv: gradcheck with the arena bound ---------------------------------------


class TestConvArenaGradcheck:
    @pytest.mark.parametrize("label", ["float32", "float64"])
    @pytest.mark.parametrize(
        "kernel_size,stride,padding",
        [(3, 1, "same"), (3, 1, 0), (3, 2, 1), (2, 1, "same"), (1, 1, 0), (1, 2, 0)],
    )
    def test_conv_arena(self, label, kernel_size, stride, padding):
        dtype = resolve_dtype(label)
        rng = np.random.default_rng(5)
        layer = Conv2D(
            3,
            4,
            kernel_size=kernel_size,
            stride=stride,
            padding=padding,
            rng=rng,
            dtype=dtype,
        )
        layer.bind_arena(BufferArena(dtype), owner="conv")
        x = rng.normal(size=(2, 3, 6, 6)).astype(dtype)
        assert_gradients_match(layer, x, rng, **DTYPE_GRADCHECK[label])


# -- byte-exact layer equivalence -----------------------------------------------


class TestByteExactLayers:
    @pytest.mark.parametrize("label", ["float32", "float64"])
    def test_dense(self, label):
        dtype = resolve_dtype(label)
        legacy, arena = _pair(
            lambda r, d: Dense(12, 7, rng=r, dtype=d), dtype
        )
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 12)).astype(dtype)
        g = rng.normal(size=(5, 7)).astype(dtype)
        (oa, ga), (ob, gb) = _roundtrip(legacy, x, g), _roundtrip(arena, x, g.copy())
        np.testing.assert_array_equal(oa, ob)
        np.testing.assert_array_equal(ga, gb)
        for name in legacy.params:
            np.testing.assert_array_equal(
                legacy.params[name].grad, arena.params[name].grad
            )

    @pytest.mark.parametrize("pool_cls", [MaxPool2D, AvgPool2D])
    def test_pooling(self, pool_cls):
        legacy, arena = _pair(lambda r, d: pool_cls(2), np.float32)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        oa = legacy.forward(x, training=True)
        ob = arena.forward(x, training=True)
        g = rng.normal(size=oa.shape).astype(np.float32)
        np.testing.assert_array_equal(oa, ob)
        np.testing.assert_array_equal(legacy.backward(g), arena.backward(g.copy()))

    @pytest.mark.parametrize("act_cls", [ReLU, LeakyReLU])
    def test_activations(self, act_cls):
        legacy, arena = _pair(lambda r, d: act_cls(), np.float32)
        rng = np.random.default_rng(4)
        # include exact zeros and negative zeros: the arena ReLU must
        # reproduce x * mask byte-for-byte even at sign-of-zero level
        x = rng.normal(size=(6, 10)).astype(np.float32)
        x.ravel()[:3] = [0.0, -0.0, 1e-38]
        g = rng.normal(size=x.shape).astype(np.float32)
        (oa, ga), (ob, gb) = _roundtrip(legacy, x, g), _roundtrip(arena, x, g.copy())
        np.testing.assert_array_equal(oa, ob)
        np.testing.assert_array_equal(ga, gb)

    @pytest.mark.parametrize(
        "bn_cls,shape", [(BatchNorm2D, (4, 5, 3, 3)), (BatchNorm1D, (6, 5))]
    )
    def test_batchnorm_training_eval_and_running_stats(self, bn_cls, shape):
        legacy, arena = _pair(lambda r, d: bn_cls(5, dtype=d), np.float32)
        rng = np.random.default_rng(6)
        for _ in range(3):
            x = rng.normal(size=shape).astype(np.float32)
            g = rng.normal(size=shape).astype(np.float32)
            (oa, ga), (ob, gb) = (
                _roundtrip(legacy, x, g),
                _roundtrip(arena, x, g.copy()),
            )
            np.testing.assert_array_equal(oa, ob)
            np.testing.assert_array_equal(ga, gb)
        np.testing.assert_array_equal(legacy.running_mean, arena.running_mean)
        np.testing.assert_array_equal(legacy.running_var, arena.running_var)
        x = rng.normal(size=shape).astype(np.float32)
        np.testing.assert_array_equal(
            legacy.forward(x, training=False), arena.forward(x, training=False)
        )


# -- byte-exact in-place optimizers ---------------------------------------------


@pytest.mark.parametrize("label", ["float32", "float64"])
@pytest.mark.parametrize(
    "opt_factory",
    [
        lambda net: SGD(net, 0.05),
        lambda net: SGD(net, 0.05, momentum=0.9, weight_decay=1e-4),
        lambda net: Adam(net, 1e-3),
        lambda net: Adam(net, 1e-3, weight_decay=1e-4),
    ],
)
def test_optimizer_steps_bitwise_equal(label, opt_factory):
    dtype = resolve_dtype(label)

    def build():
        rng = np.random.default_rng(9)
        genome = random_genome(rng, n_phases=1, nodes_per_phase=2, density=1.0)
        return decode_genome(
            genome,
            DecoderConfig(input_shape=(1, 8, 8), n_classes=2, channels=(8,), dtype=dtype),
            rng=rng,
        )

    net_a, net_b = build(), build()
    opt_a, opt_b = opt_factory(net_a), opt_factory(net_b)
    rng = np.random.default_rng(10)
    for _ in range(5):
        for (_, pa), (_, pb) in zip(net_a.parameters(), net_b.parameters()):
            g = rng.normal(size=pa.shape).astype(dtype)
            pa.grad[...] = g
            pb.grad[...] = g
        opt_a.step()
        opt_b.step()
    for (name, pa), (_, pb) in zip(net_a.parameters(), net_b.parameters()):
        np.testing.assert_array_equal(pa.value, pb.value, err_msg=name)


# -- conv + whole-network tolerance equivalence ---------------------------------


def _build_network(dtype, arena: bool):
    rng = np.random.default_rng(13)
    genome = random_genome(rng, n_phases=2, nodes_per_phase=2, density=0.7)
    network = decode_genome(
        genome,
        DecoderConfig(input_shape=(1, 12, 12), n_classes=3, channels=(8, 16), dtype=dtype),
        rng=rng,
    )
    if arena:
        network.bind_arena(BufferArena(dtype))
    return network


def test_network_forward_backward_equivalent_at_tolerance():
    net_a = _build_network(np.float64, arena=False)
    net_b = _build_network(np.float64, arena=True)
    rng = np.random.default_rng(14)
    x = rng.normal(size=(4, 1, 12, 12))
    out_a = net_a.forward(x, training=True)
    out_b = net_b.forward(x, training=True)
    np.testing.assert_allclose(out_a, out_b, rtol=0, atol=1e-12)
    g = rng.normal(size=out_a.shape)
    gx_a = net_a.backward(g)
    gx_b = net_b.backward(g.copy())
    np.testing.assert_allclose(gx_a, gx_b, rtol=0, atol=1e-10)
    # normalize by the global gradient scale: a conv bias feeding a
    # BatchNorm has an exactly-zero true gradient (BN removes constant
    # channel shifts), so per-parameter relative error is pure noise
    grads_a = [p.grad for _, p in net_a.parameters()]
    scale = max(float(np.abs(g).max()) for g in grads_a) or 1.0
    for (name, pa), (_, pb) in zip(net_a.parameters(), net_b.parameters()):
        worst = float(np.abs(pa.grad - pb.grad).max()) / scale
        assert worst < 1e-10, f"{name}: normalized grad diff {worst}"


def test_trainer_histories_track_between_arena_and_legacy():
    def run(arena: bool):
        net = _build_network(np.float64, arena=arena)
        rng = np.random.default_rng(15)
        n = 20
        x = rng.normal(size=(n, 1, 12, 12))
        y = (rng.random(n) * 3).astype(np.int64)
        trainer = Trainer(
            net,
            x,
            y,
            x[:8],
            y[:8],
            optimizer=Adam(net, 1e-3),
            batch_size=8,
            rng=np.random.default_rng(16),
        )
        stats = [trainer.train() for _ in range(3)]
        return [s.train_loss for s in stats], trainer.validate()

    losses_a, acc_a = run(False)
    losses_b, acc_b = run(True)
    np.testing.assert_allclose(losses_a, losses_b, rtol=1e-9)
    assert acc_a == acc_b


# -- steady state ----------------------------------------------------------------


def test_arena_reaches_steady_state_and_tracks_peak_bytes():
    net = _build_network(np.float32, arena=True)
    rng = np.random.default_rng(17)
    n = 20  # ragged last batch: 20 = 2*8 + 4 exercises per-shape keying
    x = rng.normal(size=(n, 1, 12, 12)).astype(np.float32)
    y = (rng.random(n) * 3).astype(np.int64)
    trainer = Trainer(
        net,
        x,
        y,
        x[:8],
        y[:8],
        optimizer=SGD(net, 0.01),
        batch_size=8,
        rng=np.random.default_rng(18),
    )
    trainer.train()
    trainer.validate()
    arena = net.arena
    assert arena.nbytes > 0 and arena.n_buffers > 0
    settled = (arena.n_buffers, arena.nbytes)
    tracemalloc.start()
    for _ in range(3):
        trainer.train()
        trainer.validate()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert (arena.n_buffers, arena.nbytes) == settled
    # three epochs of training + validation must not allocate new
    # megabyte-scale scratch — the pinned buffers absorb all of it
    assert peak < 512 * 1024, f"steady-state epochs allocated {peak} bytes"


# -- col2im out= -----------------------------------------------------------------


def test_col2im_out_matches_allocating_call():
    rng = np.random.default_rng(19)
    x = rng.normal(size=(2, 3, 7, 7))
    cols = im2col(x, 3, 3, 2)
    gcols = rng.normal(size=cols.shape)
    expected = col2im(gcols, x.shape, 3, 3, 2)
    out = np.full(x.shape, np.nan)
    result = col2im(gcols, x.shape, 3, 3, 2, out=out)
    assert result is out
    np.testing.assert_array_equal(result, expected)
    with pytest.raises(ValueError, match="expected"):
        col2im(gcols, x.shape, 3, 3, 2, out=np.empty((1, 1)))


# -- unbound layers keep allocating (opt-out) ------------------------------------


def test_unbind_restores_legacy_path():
    dtype = np.float64
    layer = Conv2D(2, 3, kernel_size=3, rng=np.random.default_rng(20), dtype=dtype)
    x = np.random.default_rng(21).normal(size=(2, 2, 5, 5))
    baseline = layer.forward(x, training=False)
    layer.bind_arena(BufferArena(dtype), owner="c")
    layer.forward(x, training=False)
    layer.unbind_arena()
    assert layer.arena is None
    np.testing.assert_array_equal(layer.forward(x, training=False), baseline)


# -- MaxPool vectorized backward vs a loop reference ------------------------------


@pytest.mark.parametrize("pool,stride", [(2, 2), (3, 3), (3, 2), (2, 1)])
def test_maxpool_backward_matches_loop_reference(pool, stride):
    rng = np.random.default_rng(23)
    layer = MaxPool2D(pool, stride=stride)
    x = rng.normal(size=(2, 3, 9, 9)).astype(np.float64)
    out = layer.forward(x, training=True)
    g = rng.normal(size=out.shape)
    grad = layer.backward(g)
    # reference: explicit per-window scatter-add to the argmax cell
    expected = np.zeros_like(x)
    n, c, oh, ow = out.shape
    for ni in range(n):
        for ci in range(c):
            for yi in range(oh):
                for xi in range(ow):
                    win = x[
                        ni,
                        ci,
                        yi * stride : yi * stride + pool,
                        xi * stride : xi * stride + pool,
                    ]
                    dy, dx = np.unravel_index(np.argmax(win), win.shape)
                    expected[ni, ci, yi * stride + dy, xi * stride + dx] += g[
                        ni, ci, yi, xi
                    ]
    np.testing.assert_array_equal(grad, expected)


# -- workflow wiring: config resolution, memo key, lineage fields ----------------


def test_workflow_config_arena_resolution_and_roundtrip():
    from repro.workflow.interfaces import WorkflowConfig

    assert WorkflowConfig().arena is True  # float32 default
    assert WorkflowConfig(dtype="float64", rng_keying="model", eval_cache=False).arena is False
    assert WorkflowConfig(arena=False).arena is False
    assert (
        WorkflowConfig(
            dtype="float64", rng_keying="model", eval_cache=False, arena=True
        ).arena
        is True
    )
    config = WorkflowConfig(arena=True)
    assert WorkflowConfig.from_dict(config.to_dict()).arena is True
    # historical run documents predate the fast path: missing key -> off
    payload = config.to_dict()
    del payload["arena"]
    assert WorkflowConfig.from_dict(payload).arena is False


def test_memo_key_separates_arena_from_legacy_evaluations():
    from repro.nas.evaluation import TrainingEvaluator
    from repro.nas.population import Individual

    rng = np.random.default_rng(24)
    genome = random_genome(rng, n_phases=1, nodes_per_phase=2, density=1.0)
    individual = Individual(genome=genome, model_id="m0", generation=0)

    def evaluator(arena):
        return TrainingEvaluator(
            dataset=None,
            engine=None,
            max_epochs=1,
            decoder_config=DecoderConfig(input_shape=(1, 8, 8), n_classes=2, channels=(8,)),
            rng_keying="genome",
            dataset_key="test-dataset",
            arena=arena,
        )

    key_on = evaluator(True).memo_key(individual)
    key_off = evaluator(False).memo_key(individual)
    assert key_on is not None and key_off is not None
    assert key_on != key_off
    # the keys differ in exactly one component: the arena flag
    differing = [i for i, (a, b) in enumerate(zip(key_on, key_off)) if a != b]
    assert len(differing) == 1
    assert (key_on[differing[0]], key_off[differing[0]]) == (True, False)


def test_individual_arena_fields_reach_model_record():
    from repro.lineage.records import ModelRecord
    from repro.lineage.tracker import LineageTracker
    from repro.nas.population import Individual

    rng = np.random.default_rng(25)
    genome = random_genome(rng, n_phases=1, nodes_per_phase=2, density=1.0)
    individual = Individual(genome=genome, model_id="m1", generation=0)
    individual.arena_enabled = True
    individual.arena_peak_bytes = 12345
    assert individual.to_dict()["arena_enabled"] is True
    assert individual.to_dict()["arena_peak_bytes"] == 12345
    record = ModelRecord(model_id="m1", generation=0, genome=genome.to_dict())
    assert record.arena_enabled is False and record.arena_peak_bytes == 0

    tracker = LineageTracker()
    tracker.observe_individual(individual)
    stored = tracker.records["m1"]
    assert stored.arena_enabled is True
    assert stored.arena_peak_bytes == 12345
