"""Tests for run replay and verification (the reproducibility loop)."""

import pytest

from repro.lineage import DataCommons, replay_run, verify_run
from repro.lineage.records import RunRecord
from repro.utils.io import atomic_write_json, read_json
from repro.workflow import run_workflow

from tests.test_workflow import small_config


@pytest.fixture()
def published(tmp_path):
    config = small_config(seed=21)
    result = run_workflow(config, commons_path=tmp_path)
    return DataCommons(tmp_path), result.run_id


class TestReplay:
    def test_replay_reproduces_search(self, published):
        commons, run_id = published
        result = replay_run(commons, run_id)
        originals = commons.load_models(run_id)
        assert len(result.search.archive) == len(originals)
        for member, original in zip(result.search.archive, originals):
            assert member.fitness == original.fitness
            assert member.genome.to_dict() == original.genome

    def test_replay_requires_stored_config(self, tmp_path):
        commons = DataCommons(tmp_path)
        commons.publish_run(
            RunRecord(run_id="legacy", intensity="low", nas_parameters={}, engine_parameters=None),
            [],
        )
        with pytest.raises(ValueError, match="cannot be replayed"):
            replay_run(commons, "legacy")


class TestVerify:
    def test_pristine_run_verifies(self, published):
        commons, run_id = published
        report = verify_run(commons, run_id)
        assert report.matches
        assert report.n_models == 6
        assert report.mismatches == []
        assert "REPRODUCED" in report.summary()

    def test_tampered_record_detected(self, published):
        commons, run_id = published
        # corrupt one published fitness value on disk
        path = commons.root / "runs" / run_id / "models" / "model_00002.json"
        record = read_json(path)
        record["fitness"] = 12.34
        atomic_write_json(path, record)

        report = verify_run(commons, run_id)
        assert not report.matches
        assert any(
            model_id == 2 and fname == "fitness"
            for model_id, fname, _, _ in report.mismatches
        )
        assert "DIVERGED" in report.summary()

    def test_missing_model_detected(self, published):
        commons, run_id = published
        (commons.root / "runs" / run_id / "models" / "model_00005.json").unlink()
        report = verify_run(commons, run_id)
        assert not report.matches
        assert any(fname == "<presence>" for _, fname, _, _ in report.mismatches)


class TestCliVerify:
    def test_cli_verify_exit_codes(self, published, capsys):
        from repro.cli import main

        commons, run_id = published
        assert main(["verify", "--commons", str(commons.root)]) == 0
        assert "REPRODUCED" in capsys.readouterr().out

        # tamper and expect exit code 2
        path = commons.root / "runs" / run_id / "models" / "model_00001.json"
        record = read_json(path)
        record["epochs_trained"] = 999
        atomic_write_json(path, record)
        assert main(["verify", "--commons", str(commons.root)]) == 2

    def test_cli_report_writes_markdown(self, published, capsys, tmp_path):
        from repro.cli import main

        commons, run_id = published
        out = tmp_path / "report.md"
        assert main(
            ["report", "--commons", str(commons.root), "--output", str(out)]
        ) == 0
        assert out.exists()
        assert out.read_text().startswith("# Run report")
