"""Tests for the Algorithm-1 training-loop plug-in."""

import numpy as np
import pytest

from repro.core.engine import PredictionEngine
from repro.core.plugin import TrainableModel, run_training_loop
from repro.nas.surrogate import LearningCurveModel

from tests.conftest import make_concave_curve


class CountingModel:
    """Minimal TrainableModel that records call ordering."""

    def __init__(self, curve):
        self.curve = list(curve)
        self.trained = 0
        self.calls = []

    def train(self):
        self.trained += 1
        self.calls.append("train")

    def validate(self):
        self.calls.append("validate")
        return self.curve[self.trained - 1]


class TestStandaloneLoop:
    def test_trains_full_budget_without_engine(self):
        model = CountingModel(make_concave_curve(25))
        result = run_training_loop(model, None, 25)
        assert result.epochs_trained == 25
        assert not result.terminated_early
        assert result.engine_interactions == 0
        # Algorithm 1 line 20: returns last measured fitness
        assert result.fitness == pytest.approx(model.curve[-1])

    def test_train_precedes_validate_each_epoch(self):
        model = CountingModel(make_concave_curve(5))
        run_training_loop(model, None, 5)
        assert model.calls == ["train", "validate"] * 5

    def test_histories_complete(self):
        curve = make_concave_curve(10)
        result = run_training_loop(CountingModel(curve), None, 10)
        np.testing.assert_allclose(result.fitness_history, curve)
        assert result.prediction_history == []

    def test_invalid_budget_rejected(self):
        with pytest.raises(Exception):
            run_training_loop(CountingModel([50.0]), None, 0)


class TestEngineLoop:
    def test_early_termination_on_clean_curve(self):
        curve = make_concave_curve(25, rate=0.45)
        result = run_training_loop(LearningCurveModel(curve), PredictionEngine(), 25)
        assert result.terminated_early
        assert result.epochs_trained < 25
        assert result.epochs_saved == 25 - result.epochs_trained
        # Algorithm 1 line 18: fitness is the last prediction
        assert result.fitness == result.prediction_history[-1]
        assert result.measured_fitness == result.fitness_history[-1]

    def test_no_termination_on_erratic_curve(self):
        rng = np.random.default_rng(0)
        curve = np.clip(50 + rng.uniform(-30, 30, 25), 0, 100)
        result = run_training_loop(LearningCurveModel(curve), PredictionEngine(), 25)
        assert not result.terminated_early
        assert result.epochs_trained == 25
        assert result.fitness == pytest.approx(curve[-1])

    def test_overhead_accounting(self):
        curve = make_concave_curve(25, rate=0.45)
        result = run_training_loop(LearningCurveModel(curve), PredictionEngine(), 25)
        assert result.engine_interactions == result.epochs_trained
        assert result.engine_overhead_seconds > 0
        assert result.engine_overhead_mean > 0
        assert result.engine_overhead_seconds == pytest.approx(
            result.engine_overhead_mean * result.engine_interactions, rel=1e-6
        )

    def test_epoch_callback_sees_predictions(self):
        seen = []
        curve = make_concave_curve(25, rate=0.45)
        run_training_loop(
            LearningCurveModel(curve),
            PredictionEngine(),
            25,
            epoch_callback=lambda e, f, p: seen.append((e, f, p)),
        )
        assert seen[0][0] == 1 and seen[0][2] is None  # before c_min: no prediction
        assert seen[2][2] is not None                  # epoch 3 = c_min: prediction
        epochs = [e for e, _, _ in seen]
        assert epochs == list(range(1, len(seen) + 1))

    def test_to_dict_serializable(self):
        import json

        result = run_training_loop(
            LearningCurveModel(make_concave_curve(10)), PredictionEngine(), 10
        )
        payload = json.dumps(result.to_dict())
        assert "fitness" in payload


class TestProtocol:
    def test_learning_curve_model_satisfies_protocol(self):
        assert isinstance(LearningCurveModel(np.array([50.0])), TrainableModel)

    def test_counting_model_satisfies_protocol(self):
        assert isinstance(CountingModel([50.0]), TrainableModel)
