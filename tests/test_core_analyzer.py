"""Tests for the convergence analyzer (paper §2.1.2)."""

import pytest

from repro.core.analyzer import ConvergenceAnalyzer
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_paper_defaults(self):
        analyzer = ConvergenceAnalyzer()
        assert analyzer.n_predictions == 3
        assert analyzer.tolerance == 0.5
        assert analyzer.fitness_bounds == (0.0, 100.0)

    def test_rejects_window_below_two(self):
        with pytest.raises(ValidationError):
            ConvergenceAnalyzer(n_predictions=1)

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValidationError):
            ConvergenceAnalyzer(stability_metric="median")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            ConvergenceAnalyzer(fitness_bounds=(100.0, 0.0))

    def test_rejects_non_positive_tolerance(self):
        with pytest.raises(ValidationError):
            ConvergenceAnalyzer(tolerance=0.0)


class TestConvergenceRule:
    def test_too_few_predictions_not_converged(self):
        analyzer = ConvergenceAnalyzer()
        result = analyzer.analyze([95.0, 95.1])
        assert not result.converged
        assert "need 3" in result.reason

    def test_stable_window_converges(self):
        analyzer = ConvergenceAnalyzer()
        result = analyzer.analyze([80.0, 90.0, 95.0, 95.2, 95.4])
        assert result.converged
        assert result.spread == pytest.approx(0.4)
        assert result.window == (95.0, 95.2, 95.4)

    def test_unstable_window_does_not_converge(self):
        analyzer = ConvergenceAnalyzer()
        result = analyzer.analyze([95.0, 95.2, 96.0])
        assert not result.converged
        assert result.spread == pytest.approx(1.0)

    def test_only_trailing_window_matters(self):
        analyzer = ConvergenceAnalyzer()
        # wild early history, stable tail
        assert analyzer([10.0, 150.0, -3.0, 95.0, 95.1, 95.2])

    def test_out_of_bounds_prediction_blocks_convergence(self):
        analyzer = ConvergenceAnalyzer()
        for bad in (101.0, -0.5, float("nan"), float("inf")):
            result = analyzer.analyze([95.0, 95.1, bad])
            assert not result.converged
            assert "invalid" in result.reason

    def test_boundary_values_are_valid(self):
        analyzer = ConvergenceAnalyzer()
        assert analyzer([0.0, 0.0, 0.0])
        assert analyzer([100.0, 100.0, 100.0])

    def test_spread_exactly_tolerance_converges(self):
        analyzer = ConvergenceAnalyzer(tolerance=0.5)
        assert analyzer([95.0, 95.25, 95.5])


class TestStabilityMetrics:
    def test_variance_metric(self):
        analyzer = ConvergenceAnalyzer(stability_metric="variance", tolerance=0.05)
        # range 0.4 but variance ~0.027 -> converged under variance
        assert analyzer([95.0, 95.2, 95.4])

    def test_std_metric(self):
        analyzer = ConvergenceAnalyzer(stability_metric="std", tolerance=0.2)
        assert analyzer([95.0, 95.2, 95.4])
        assert not analyzer([94.0, 95.2, 96.4])

    def test_longer_window(self):
        analyzer = ConvergenceAnalyzer(n_predictions=5)
        preds = [95.0, 95.1, 95.2, 95.3, 95.4]
        assert analyzer(preds)
        assert not analyzer([90.0] + preds[1:])


class TestDescribe:
    def test_snapshot_fields(self):
        snap = ConvergenceAnalyzer().describe()
        assert snap == {
            "n_predictions": 3,
            "tolerance": 0.5,
            "fitness_bounds": [0.0, 100.0],
            "stability_metric": "range",
        }
