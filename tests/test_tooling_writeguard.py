"""The runtime write guard: trips on aliasing writes, otherwise invisible."""

import pickle

import numpy as np
import pytest

from repro.lineage.tracker import LineageTracker
from repro.nas.evaluation import TrainingEvaluator
from repro.nas.genome import random_genome
from repro.nas.population import Individual
from repro.nn import Dense, Flatten, Network, ReLU, Trainer
from repro.nn.layers.base import Layer
from repro.tooling.sanitizer import NumericalFault, WriteGuard


def dense_net(rng, size=16):
    return Network(
        [Flatten(), Dense(size * size, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)],
        input_shape=(1, size, size),
        name="guarded-net",
    )


def make_trainer(rng, tiny_dataset, **kwargs):
    net = dense_net(rng)
    trainer = Trainer(
        net,
        tiny_dataset.x_train,
        tiny_dataset.y_train,
        tiny_dataset.x_test,
        tiny_dataset.y_test,
        batch_size=16,
        rng=rng,
        **kwargs,
    )
    return net, trainer


class InPlaceLayer(Layer):
    """The seeded aliasing bug: writes its borrowed input in place."""

    def forward(self, x, training=False):
        x += 1.0
        return x

    def backward(self, grad_out):
        return grad_out

    def output_shape(self, input_shape):
        return input_shape


class TestGuardTrips:
    def test_in_place_write_raises_guarded_write(self):
        net = Network([InPlaceLayer()], input_shape=(4,), name="evil")
        WriteGuard().watch(net)
        with pytest.raises(NumericalFault) as excinfo:
            net.forward(np.ones((2, 4), dtype=np.float32), training=True)
        fault = excinfo.value
        assert fault.kind == "guarded-write"
        assert fault.layer == 0
        assert fault.model == "evil"
        assert fault.detail["phase"] == "forward"

    def test_backward_writes_are_guarded_too(self):
        class GradWriter(Layer):
            def forward(self, x, training=False):
                return x

            def backward(self, grad_out):
                grad_out *= 0.5
                return grad_out

            def output_shape(self, input_shape):
                return input_shape

        net = Network([GradWriter()], input_shape=(4,), name="evil")
        WriteGuard().watch(net)
        net.forward(np.ones((2, 4), dtype=np.float32))
        with pytest.raises(NumericalFault) as excinfo:
            net.backward(np.ones((2, 4), dtype=np.float32))
        assert excinfo.value.kind == "guarded-write"
        assert excinfo.value.detail["phase"] == "backward"

    def test_fault_pickles_with_context(self):
        fault = NumericalFault(
            "guarded-write", "layer 0 wrote", model="m", epoch=2, layer=0,
            detail={"phase": "forward", "shape": [2, 4]},
        )
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.kind == "guarded-write"
        assert clone.detail == fault.detail

    def test_unrelated_value_errors_pass_through(self):
        class Broken(Layer):
            def forward(self, x, training=False):
                raise ValueError("shapes do not broadcast")

            def backward(self, grad_out):
                return grad_out

        net = Network([Broken()], input_shape=(4,))
        WriteGuard().watch(net)
        with pytest.raises(ValueError, match="broadcast"):
            net.forward(np.ones((2, 4)))


class TestGuardIsInvisibleWhenClean:
    def test_guarded_training_is_byte_identical(self, tiny_dataset):
        histories = []
        params = []
        for guard_on in (False, True):
            rng = np.random.default_rng(7)
            net, trainer = make_trainer(rng, tiny_dataset)
            if guard_on:
                guard = WriteGuard().watch(net)
                trainer.write_guard = guard
            for _ in range(3):
                trainer.train()
            histories.append([(s.train_loss, s.train_accuracy) for s in trainer.history])
            params.append({name: p.value.copy() for name, p in net.parameters()})
            if guard_on:
                assert guard.n_guarded > 0
                assert guard.epoch == 3
        assert histories[0] == histories[1]
        for name in params[0]:
            assert np.array_equal(params[0][name], params[1][name]), name

    def test_writability_is_restored_after_each_call(self):
        net = Network([Flatten()], input_shape=(2, 2))
        WriteGuard().watch(net)
        x = np.ones((1, 2, 2), dtype=np.float32)
        net.forward(x)
        assert x.flags.writeable

    def test_read_only_inputs_stay_read_only(self):
        net = Network([Flatten()], input_shape=(2, 2))
        WriteGuard().watch(net)
        x = np.ones((1, 2, 2), dtype=np.float32)
        x.flags.writeable = False
        net.forward(x)
        assert not x.flags.writeable


class TestEvaluatorIntegration:
    def evaluate(self, tiny_dataset, *, sanitize_writes, seed_rng):
        tracker = LineageTracker()
        evaluator = TrainingEvaluator(
            tiny_dataset,
            engine=None,
            max_epochs=2,
            observers=[tracker.observe_epoch],
            sanitize_writes=sanitize_writes,
        )
        individual = Individual(
            genome=random_genome(seed_rng), model_id=11, generation=0
        )
        evaluator.evaluate(individual)
        return individual, tracker.records[11]

    def test_seeded_lineage_identical_with_untripped_guard(self, tiny_dataset):
        ind_off, rec_off = self.evaluate(
            tiny_dataset, sanitize_writes=False, seed_rng=np.random.default_rng(3)
        )
        ind_on, rec_on = self.evaluate(
            tiny_dataset, sanitize_writes=True, seed_rng=np.random.default_rng(3)
        )
        assert ind_off.fitness == ind_on.fitness
        off, on = rec_off.to_dict(), rec_on.to_dict()
        # wall-clock fields are never stable across runs
        for doc in (off, on):
            doc.pop("engine_overhead_seconds", None)
            for epoch in doc.get("epochs", []):
                epoch.pop("epoch_seconds", None)
        assert off == on

    def test_memo_key_distinguishes_guarded_runs(self, tiny_dataset, rng):
        off = TrainingEvaluator(
            tiny_dataset, engine=None, rng_keying="genome", sanitize_writes=False
        )
        on = TrainingEvaluator(
            tiny_dataset, engine=None, rng_keying="genome", sanitize_writes=True
        )
        individual = Individual(genome=random_genome(rng), model_id=1, generation=0)
        key_off, key_on = off.memo_key(individual), on.memo_key(individual)
        assert key_off is not None and key_on is not None
        assert key_off != key_on
