"""Tests for io, timing, and validation utilities."""

import json
import time

import numpy as np
import pytest

from repro.utils.io import atomic_write_json, atomic_write_npz, read_json, read_npz
from repro.utils.timing import Stopwatch, format_hours, format_seconds
from repro.utils.validation import (
    ValidationError,
    ensure_finite,
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
)


class TestAtomicJson:
    def test_round_trip(self, tmp_path):
        payload = {"a": 1, "b": [1.5, 2.5], "c": "x"}
        path = atomic_write_json(tmp_path / "doc.json", payload)
        assert read_json(path) == payload

    def test_numpy_types_serialized(self, tmp_path):
        payload = {
            "i": np.int64(3),
            "f": np.float64(2.5),
            "b": np.bool_(True),
            "arr": np.arange(3),
        }
        path = atomic_write_json(tmp_path / "np.json", payload)
        loaded = read_json(path)
        assert loaded == {"i": 3, "f": 2.5, "b": True, "arr": [0, 1, 2]}

    def test_creates_parent_dirs(self, tmp_path):
        path = atomic_write_json(tmp_path / "deep" / "nested" / "doc.json", {})
        assert path.exists()

    def test_no_tmp_files_left_behind(self, tmp_path):
        atomic_write_json(tmp_path / "doc.json", {"x": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert read_json(path) == {"v": 2}


class TestAtomicNpz:
    def test_round_trip(self, tmp_path):
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.ones(4)}
        path = atomic_write_npz(tmp_path / "arrays.npz", arrays)
        loaded = read_npz(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])


class TestStopwatch:
    def test_accumulates_laps(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                time.sleep(0.001)
        assert len(sw.laps) == 3
        assert sw.total >= 0.003
        assert sw.mean_lap == pytest.approx(sw.total / 3)

    def test_variance_zero_below_two_laps(self):
        sw = Stopwatch()
        assert sw.lap_variance == 0.0
        with sw:
            pass
        assert sw.lap_variance == 0.0

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestFormatting:
    def test_format_seconds_styles(self):
        assert format_seconds(5.25) == "5.25s"
        assert format_seconds(65) == "1m 05.0s"
        assert format_seconds(3723.4) == "1h 02m 03.4s"

    def test_format_seconds_negative(self):
        assert format_seconds(-5).startswith("-")

    def test_format_hours(self):
        assert format_hours(46.55 * 3600) == "46.55 h"


class TestValidation:
    def test_ensure_positive(self):
        assert ensure_positive(1.5, "x") == 1.5
        with pytest.raises(ValidationError, match="x must be positive"):
            ensure_positive(0, "x")

    def test_ensure_non_negative(self):
        assert ensure_non_negative(0, "x") == 0
        with pytest.raises(ValidationError):
            ensure_non_negative(-1, "x")

    def test_ensure_in_range_inclusive_and_exclusive(self):
        assert ensure_in_range(5, "x", 0, 5) == 5
        with pytest.raises(ValidationError):
            ensure_in_range(5, "x", 0, 5, inclusive=False)

    def test_ensure_probability(self):
        assert ensure_probability(0.5, "p") == 0.5
        with pytest.raises(ValidationError):
            ensure_probability(1.5, "p")

    def test_ensure_finite(self):
        assert ensure_finite(1.0, "x") == 1.0
        with pytest.raises(ValidationError):
            ensure_finite(float("nan"), "x")
        with pytest.raises(ValidationError):
            ensure_finite(float("inf"), "x")
