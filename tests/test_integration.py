"""Cross-module integration tests: the full composed workflow."""

import numpy as np
import pytest

from repro.analysis import CommonsQuery, pareto_frontier, termination_histogram
from repro.core.engine import EngineConfig
from repro.lineage import DataCommons, ProvenanceGraph
from repro.nas import NSGANetConfig
from repro.scheduler import FifoWorkerPool
from repro.workflow import WorkflowConfig, run_comparison, run_workflow
from repro.xfel import BeamIntensity, DatasetConfig


def mini_config(intensity, mode="surrogate", seed=11):
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=4, offspring_per_generation=4, generations=3, max_epochs=12
        ),
        engine=EngineConfig(e_pred=12, tolerance=1.0),
        dataset=DatasetConfig(intensity=intensity, images_per_class=24, image_size=16),
        mode=mode,
        n_gpus=(1, 2, 4),
        seed=seed,
    )


class TestSurrogateWorkflowIntegration:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_comparison(mini_config(BeamIntensity.MEDIUM))

    def test_engine_saves_epochs_without_hurting_best_fitness(self, comparison):
        assert comparison.epochs_saved_percent > 0
        best_a4nn = comparison.a4nn.search.population.best_fitness()
        best_standalone = comparison.standalone.search.population.best_fitness()
        # A4NN's best reported fitness stays within a few points
        assert best_a4nn >= best_standalone - 5.0

    def test_walltime_consistent_with_epochs(self, comparison):
        w1 = comparison.a4nn.walltime[1]
        assert w1.total_epochs == comparison.a4nn.total_epochs_trained
        assert comparison.standalone.walltime[1].total_epochs == 12 * 12

    def test_scaling_monotone_in_gpus(self, comparison):
        walltimes = [comparison.a4nn.walltime[n].wall_seconds for n in (1, 2, 4)]
        assert walltimes[0] > walltimes[1] > walltimes[2]

    def test_lineage_agrees_with_search(self, comparison):
        records = comparison.a4nn.tracker.all_records()
        archive = comparison.a4nn.search.archive
        assert len(records) == len(archive)
        for record, member in zip(records, archive):
            assert record.fitness == member.fitness
            assert record.flops == member.flops
            assert len(record.fitness_history) == member.result.epochs_trained


class TestCommonsRoundTripIntegration:
    def test_full_cycle_publish_query_analyze(self, tmp_path):
        config = mini_config(BeamIntensity.HIGH)
        result = run_workflow(config, commons_path=tmp_path)
        commons = DataCommons(tmp_path)
        records = commons.load_models(result.run_id)

        # query layer sees exactly what the search produced
        query = CommonsQuery(records)
        assert len(query) == len(result.search.archive)
        assert query.mean_fitness() == pytest.approx(
            np.mean([m.fitness for m in result.search.archive])
        )

        # analysis layer consumes commons records directly
        frontier = pareto_frontier(records)
        assert frontier
        summary = termination_histogram(records, max_epochs=12)
        assert 0.0 <= summary.percent_terminated <= 100.0

        graph = ProvenanceGraph.from_records(records)
        assert set(graph.generations()) == {0, 1, 2}

    def test_rerun_same_seed_identical_records(self, tmp_path):
        config = mini_config(BeamIntensity.LOW, seed=3)
        r1 = run_workflow(config, commons_path=tmp_path / "a")
        r2 = run_workflow(config, commons_path=tmp_path / "b")
        m1 = DataCommons(tmp_path / "a").load_models(r1.run_id)
        m2 = DataCommons(tmp_path / "b").load_models(r2.run_id)
        for a, b in zip(m1, m2):
            da, db = a.to_dict(), b.to_dict()
            # measured engine wall time is inherently non-deterministic
            da.pop("engine_overhead_seconds")
            db.pop("engine_overhead_seconds")
            assert da == db


class TestRealModeIntegration:
    def test_real_training_through_full_stack(self, tmp_path):
        config = mini_config(BeamIntensity.HIGH, mode="real")
        result = run_workflow(config, commons_path=tmp_path)
        # real epoch times are measured seconds
        for member in result.search.archive:
            assert all(0 < s < 60 for s in member.epoch_seconds)
        # something beats chance on the clean dataset
        assert result.search.population.best_fitness() > 50.0
        # lineage has train-loss traces only real mode produces
        record = result.tracker.all_records()[0]
        assert record.epochs[0]["train_loss"] is not None


class TestWorkerPoolIntegration:
    def test_parallel_generation_matches_serial(self, tiny_dataset):
        from repro.core.engine import PredictionEngine
        from repro.nas import Individual, SurrogateEvaluator, random_genome
        from repro.utils.rng import RngStream

        def build(n):
            evaluator = SurrogateEvaluator(
                BeamIntensity.MEDIUM,
                PredictionEngine(),
                rng_stream=RngStream(4),
            )
            rng = np.random.default_rng(0)
            individuals = [Individual(random_genome(rng), i, 0) for i in range(6)]
            FifoWorkerPool(evaluator, n_workers=n).evaluate_generation(individuals)
            return [(m.fitness, m.flops) for m in individuals]

        assert build(1) == build(3)
