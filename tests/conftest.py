"""Shared fixtures for the test suite."""

import logging
import sys
from pathlib import Path

import numpy as np
import pytest

try:
    import repro  # noqa: F401 -- probe for an installed package (pip install -e .)
except ModuleNotFoundError:  # fall back to the in-repo source tree
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.xfel import BeamIntensity, DatasetConfig, generate_dataset

logging.disable(logging.INFO)


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small high-intensity dataset shared across tests (16x16, 30/class)."""
    return generate_dataset(
        DatasetConfig(
            intensity=BeamIntensity.HIGH, images_per_class=30, image_size=16
        )
    )


@pytest.fixture(scope="session")
def tiny_noisy_dataset():
    """A small low-intensity (noisy) dataset."""
    return generate_dataset(
        DatasetConfig(intensity=BeamIntensity.LOW, images_per_class=30, image_size=16)
    )


def make_concave_curve(n_epochs=25, asymptote=95.0, start=55.0, rate=0.35, noise=0.0, seed=0):
    """A well-behaved learning curve for engine tests."""
    rng = np.random.default_rng(seed)
    epochs = np.arange(1, n_epochs + 1, dtype=float)
    curve = asymptote - (asymptote - start) * np.exp(-rate * epochs)
    if noise:
        curve = curve + rng.normal(0, noise, n_epochs)
    return np.clip(curve, 0.0, 100.0)
