"""Tests for experiment harness pieces that run quickly."""

import pytest

from repro.experiments import (
    PAPER_ENGINE_CONFIG,
    PAPER_NAS_CONFIG,
    paper_config,
    run_fig2,
)
from repro.experiments.fig2_prediction import example_curve, format_fig2
from repro.experiments.reporting import ReportTable, shape_check
from repro.xfel import BeamIntensity


class TestPaperConfigs:
    def test_table1_constants(self):
        assert PAPER_ENGINE_CONFIG.function == "exp3"
        assert PAPER_ENGINE_CONFIG.c_min == 3
        assert PAPER_ENGINE_CONFIG.e_pred == 25
        assert PAPER_ENGINE_CONFIG.n_predictions == 3
        assert PAPER_ENGINE_CONFIG.tolerance == 0.5

    def test_table2_constants(self):
        assert PAPER_NAS_CONFIG.population_size == 10
        assert PAPER_NAS_CONFIG.nodes_per_phase == 4
        assert PAPER_NAS_CONFIG.offspring_per_generation == 10
        assert PAPER_NAS_CONFIG.generations == 10
        assert PAPER_NAS_CONFIG.max_epochs == 25
        assert PAPER_NAS_CONFIG.total_evaluations == 100

    def test_paper_config_builds_per_intensity(self):
        for intensity in BeamIntensity:
            config = paper_config(intensity)
            assert config.intensity is intensity
            assert config.nas == PAPER_NAS_CONFIG
            assert config.engine == PAPER_ENGINE_CONFIG


class TestFig2:
    def test_example_converges_early(self):
        result = run_fig2()
        assert result.termination_epoch is not None
        assert 5 <= result.termination_epoch <= 20
        # prediction close to the curve's true final value
        assert result.final_prediction == pytest.approx(
            result.true_final_fitness, abs=2.0
        )

    def test_predictions_start_at_c_min(self):
        result = run_fig2()
        first_epoch = result.predictions[0][0]
        assert first_epoch == 3

    def test_custom_curve(self):
        result = run_fig2(example_curve(seed=5))
        assert len(result.fitness_curve) >= 3

    def test_format_mentions_convergence(self):
        text = format_fig2(run_fig2())
        assert "converged at epoch" in text
        assert "Figure 2" in text


class TestReporting:
    def test_table_alignment_and_values(self):
        table = ReportTable("metric", "paper", "measured")
        table.row("saved %", 13.3, 13.64)
        text = table.render("Demo")
        assert "Demo" in text
        assert "13.30" in text and "13.64" in text

    def test_row_arity_checked(self):
        table = ReportTable("a", "b")
        with pytest.raises(ValueError):
            table.row(1)

    def test_shape_check_markers(self):
        assert shape_check("x", True).startswith("[ok]")
        assert shape_check("x", False).startswith("[MISMATCH]")
