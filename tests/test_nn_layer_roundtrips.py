"""Parametrized config/serialization round-trips for every layer type."""

import numpy as np
import pytest

from repro.nas.decoder import PhaseBlock
from repro.nn.layers import (
    LAYER_TYPES,
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)

# (constructor, per-sample input shape) for each layer type
LAYER_CASES = [
    (lambda rng: Dense(6, 4, rng=rng), (6,)),
    (lambda rng: Dense(6, 4, use_bias=False, rng=rng), (6,)),
    (lambda rng: Conv2D(2, 3, kernel_size=3, rng=rng), (2, 6, 6)),
    (lambda rng: Conv2D(2, 3, kernel_size=3, stride=2, padding=1, rng=rng), (2, 6, 6)),
    (lambda rng: MaxPool2D(2), (2, 6, 6)),
    (lambda rng: AvgPool2D(3, stride=1), (2, 6, 6)),
    (lambda rng: GlobalAvgPool2D(), (2, 6, 6)),
    (lambda rng: BatchNorm2D(2), (2, 4, 4)),
    (lambda rng: BatchNorm1D(5), (5,)),
    (lambda rng: Dropout(0.3, rng=rng), (7,)),
    (lambda rng: Flatten(), (2, 3, 3)),
    (lambda rng: ReLU(), (5,)),
    (lambda rng: LeakyReLU(0.2), (5,)),
    (lambda rng: Sigmoid(), (5,)),
    (lambda rng: Tanh(), (5,)),
    (lambda rng: PhaseBlock(3, (1, 0, 1, 1), 2, 4, rng=rng), (2, 5, 5)),
]


@pytest.mark.parametrize("factory,shape", LAYER_CASES)
class TestLayerRoundTrips:
    def test_config_rebuilds_same_type(self, factory, shape, rng):
        layer = factory(rng)
        cls = LAYER_TYPES[type(layer).__name__]
        rebuilt = cls(**layer.get_config())
        assert type(rebuilt) is type(layer)
        assert rebuilt.get_config() == layer.get_config()

    def test_output_shape_matches_execution(self, factory, shape, rng):
        layer = factory(rng)
        x = rng.normal(size=(3, *shape))
        out = layer.forward(x, training=False)
        assert out.shape == (3, *layer.output_shape(shape))

    def test_flops_non_negative(self, factory, shape, rng):
        layer = factory(rng)
        assert layer.flops(shape) >= 0

    def test_repr_mentions_type(self, factory, shape, rng):
        layer = factory(rng)
        assert type(layer).__name__ in repr(layer)


def test_all_registered_types_covered():
    covered = {
        type(factory(np.random.default_rng(0))).__name__ for factory, _ in LAYER_CASES
    }
    assert covered == set(LAYER_TYPES)
