"""The semantic engine: symbol tables, call graph, and value tracing."""

import ast
import textwrap

from repro.tooling.context import ModuleContext, ProjectContext
from repro.tooling.dataflow import (
    mapping_values,
    trace_value,
    unseeded_rng_call,
)
from repro.tooling.graph import build_graph


def project_of(sources: dict) -> ProjectContext:
    project = ProjectContext()
    for path, text in sources.items():
        project.add(ModuleContext.parse(textwrap.dedent(text), path))
    return project


# -- symbol tables -------------------------------------------------------------


def test_imports_resolve_to_dotted_targets():
    graph = build_graph(project_of({
        "repro/a.py": """
            import numpy as np
            from repro.b import helper
            from repro.b import helper as h2
            from . import b
        """,
        "repro/b.py": "def helper():\n    pass\n",
    }))
    symbols = graph.modules["repro.a"]
    assert symbols.imports["np"] == "numpy"
    assert symbols.imports["helper"] == "repro.b.helper"
    assert symbols.imports["h2"] == "repro.b.helper"
    assert symbols.imports["b"] == "repro.b"
    assert symbols.resolve("helper") == "repro.b.helper"
    assert symbols.resolve("b.helper") == "repro.b.helper"


def test_relative_import_resolution_from_submodule():
    graph = build_graph(project_of({
        "repro/pkg/mod.py": "from ..other import thing\n",
        "repro/other.py": "thing = 1\n",
    }))
    assert graph.modules["repro.pkg.mod"].imports["thing"] == "repro.other.thing"


def test_local_definitions_resolve_without_imports():
    graph = build_graph(project_of({
        "repro/a.py": """
            class Widget:
                pass
            def make():
                return Widget()
        """,
    }))
    symbols = graph.modules["repro.a"]
    assert symbols.resolve("Widget") == "repro.a.Widget"
    assert symbols.resolve("make") == "repro.a.make"
    assert symbols.resolve("not_here") is None


def test_function_qualnames_and_method_indexing():
    graph = build_graph(project_of({
        "repro/m.py": """
            def top():
                pass
            class Box:
                def get(self):
                    def inner():
                        pass
                    return inner
        """,
    }))
    assert "repro.m.top" in graph.functions
    assert "repro.m.Box.get" in graph.functions
    # nested defs fold into the enclosing function, not the index
    assert not any(q.endswith(".inner") for q in graph.functions)


def test_import_graph_restricted_to_project_modules():
    graph = build_graph(project_of({
        "repro/a.py": "import numpy as np\nfrom repro.b import helper\n",
        "repro/b.py": "def helper():\n    pass\n",
    }))
    assert graph.imports["repro.a"] == {"repro.b"}


# -- call graph reachability ---------------------------------------------------


def test_resolved_edges_follow_imports_and_self_methods():
    graph = build_graph(project_of({
        "repro/a.py": """
            from repro.b import helper
            class Runner:
                def go(self):
                    self.step()
                    return helper()
                def step(self):
                    pass
        """,
        "repro/b.py": "def helper():\n    pass\n",
    }))
    calls = graph.functions["repro.a.Runner.go"].calls
    assert ("resolved", "repro.a.Runner.step") in calls
    assert ("resolved", "repro.b.helper") in calls


def test_reachable_returns_shortest_witness_chain():
    graph = build_graph(project_of({
        "repro/a.py": """
            from repro.b import mid
            from repro.c import leaf
            def entry():
                mid()
                leaf()
        """,
        "repro/b.py": """
            from repro.c import leaf
            def mid():
                leaf()
        """,
        "repro/c.py": "def leaf():\n    pass\n",
    }))
    chains = graph.reachable(["repro.a.entry"], name_matches=False)
    # both paths reach leaf; BFS must report the direct one
    assert chains["repro.c.leaf"] == ("repro.a.entry", "repro.c.leaf")


def test_name_edges_cross_duck_typed_seams_and_can_be_excluded():
    sources = {
        "repro/a.py": """
            def entry(evaluator):
                return evaluator.evaluate()
        """,
        "repro/b.py": """
            class TrainingEvaluator:
                def evaluate(self):
                    pass
        """,
    }
    graph = build_graph(project_of(sources))
    loose = graph.reachable(["repro.a.entry"], name_matches=True)
    strict = graph.reachable(["repro.a.entry"], name_matches=False)
    assert "repro.b.TrainingEvaluator.evaluate" in loose
    assert "repro.b.TrainingEvaluator.evaluate" not in strict


# -- RNG call classification ---------------------------------------------------


def classify(expr: str):
    node = ast.parse(expr, mode="eval").body
    return unseeded_rng_call(node)


def test_unseeded_rng_classification():
    assert classify("np.random.default_rng()") is not None
    assert classify("np.random.default_rng(42)") is None
    assert classify("np.random.rand(3)") is not None
    assert classify("random.random()") is not None
    assert classify("random.Random(7)") is None
    assert classify("random.Random()") is not None
    assert classify("random.SystemRandom(7)") is not None  # OS entropy, always
    assert classify("math.sqrt(2)") is None


# -- value tracing -------------------------------------------------------------


def scope_and_symbols(source: str, func_name: str = "f"):
    graph = build_graph(project_of({"repro/t.py": source}))
    symbols = graph.modules["repro.t"]
    info = graph.functions[f"repro.t.{func_name}"]
    return symbols, info


def test_trace_value_classifies_lambda_and_closure():
    symbols, info = scope_and_symbols("""
        def f():
            cb = lambda: 1
            def local():
                pass
            a, b = cb, local
            return a, b
    """)
    assigns = [n for n in ast.walk(info.node) if isinstance(n, ast.Return)]
    a_expr, b_expr = assigns[0].value.elts
    assert trace_value(symbols, info, a_expr).kind == "lambda"
    origin = trace_value(symbols, info, b_expr)
    assert origin.kind == "closure"
    assert origin.detail == "local"


def test_trace_value_follows_assignment_chains_to_calls():
    symbols, info = scope_and_symbols("""
        import threading
        def f():
            lock = threading.Lock()
            alias = lock
            return alias
    """)
    ret = next(n for n in ast.walk(info.node) if isinstance(n, ast.Return))
    origin = trace_value(symbols, info, ret.value)
    assert origin.kind == "call"
    assert origin.detail == "threading.Lock"


def test_mapping_values_expands_dict_literals():
    symbols, info = scope_and_symbols("""
        def f():
            kw = dict(mode="x", factory=lambda: 1)
            return kw
    """)
    ret = next(n for n in ast.walk(info.node) if isinstance(n, ast.Return))
    values = dict(mapping_values(symbols, info, ret.value))
    assert set(values) == {"mode", "factory"}
    assert trace_value(symbols, info, values["factory"]).kind == "lambda"
