"""Tests for least-squares curve fitting."""

import numpy as np
import pytest

from repro.core.fitting import FitError, fit_curve
from repro.core.parametric import get_function

from tests.conftest import make_concave_curve


class TestFitCurve:
    def test_recovers_clean_exp3_curve(self):
        fn = get_function("exp3")
        x = np.arange(1, 16, dtype=float)
        y = fn(x, 95.0, 1.6, 3.0)
        fit = fit_curve(fn, x, y)
        assert fit is not None
        assert fit.rmse < 0.05
        # extrapolation to epoch 25 must be close to the true value
        assert fit.predict(25.0) == pytest.approx(float(fn(25.0, 95.0, 1.6, 3.0)), abs=0.2)

    def test_noisy_curve_still_fits(self):
        fn = get_function("exp3")
        curve = make_concave_curve(15, noise=0.5, seed=3)
        fit = fit_curve(fn, np.arange(1, 16), curve)
        assert fit is not None
        assert fit.rmse < 2.0

    def test_underdetermined_returns_none(self):
        fn = get_function("exp3")
        assert fit_curve(fn, [1, 2], [50.0, 60.0]) is None

    def test_underdetermined_strict_raises(self):
        fn = get_function("exp3")
        with pytest.raises(FitError, match="need >= 3 points"):
            fit_curve(fn, [1, 2], [50.0, 60.0], strict=True)

    def test_non_finite_data_returns_none(self):
        fn = get_function("exp3")
        assert fit_curve(fn, [1, 2, 3, 4], [50.0, np.nan, 60.0, 65.0]) is None

    def test_mismatched_shapes_raise(self):
        fn = get_function("exp3")
        with pytest.raises(ValueError, match="equal-length"):
            fit_curve(fn, [1, 2, 3], [50.0, 60.0])

    def test_parameters_respect_bounds(self):
        fn = get_function("exp3")
        curve = make_concave_curve(20, noise=2.0, seed=5)
        fit = fit_curve(fn, np.arange(1, 21), curve)
        assert fit is not None
        theta = np.asarray(fit.theta)
        assert np.all(theta >= np.asarray(fn.lower) - 1e-9)
        assert np.all(theta <= np.asarray(fn.upper) + 1e-9)

    def test_predict_scalar_and_vector(self):
        fn = get_function("exp3")
        fit = fit_curve(fn, np.arange(1, 11), make_concave_curve(10))
        assert isinstance(fit.predict(25.0), float)
        vec = fit.predict(np.array([20.0, 25.0]))
        assert vec.shape == (2,)

    def test_flat_curve_fits_constant(self):
        fn = get_function("exp3")
        y = np.full(10, 50.0)
        fit = fit_curve(fn, np.arange(1, 11), y)
        assert fit is not None
        assert fit.predict(25.0) == pytest.approx(50.0, abs=1.0)

    def test_n_points_recorded(self):
        fn = get_function("exp3")
        fit = fit_curve(fn, np.arange(1, 8), make_concave_curve(7))
        assert fit.n_points == 7
