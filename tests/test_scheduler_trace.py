"""Tests for schedule trace exports."""

import json

import pytest

from repro.scheduler import Job, ascii_timeline, chrome_trace, schedule_run


@pytest.fixture
def schedule():
    generations = [
        [Job(0, (10.0,)), Job(1, (4.0,)), Job(2, (4.0,))],
        [Job(3, (3.0,)), Job(4, (3.0,))],
    ]
    return schedule_run(generations, 2)


class TestAsciiTimeline:
    def test_one_lane_per_gpu(self, schedule):
        text = ascii_timeline(schedule)
        lines = text.splitlines()
        assert lines[0].startswith("gpu0")
        assert lines[1].startswith("gpu1")
        assert lines[2].startswith("gen")

    def test_jobs_and_idle_marks_present(self, schedule):
        text = ascii_timeline(schedule, width=60)
        assert "0" in text  # job 0's glyph
        assert "." in text  # idle time from the barrier
        assert "|" in text  # generation markers
        assert "utilization" in text

    def test_empty_schedule(self):
        from repro.scheduler.fifo import ScheduleResult

        assert ascii_timeline(ScheduleResult()) == "(empty schedule)"

    def test_width_validation(self, schedule):
        with pytest.raises(ValueError):
            ascii_timeline(schedule, width=5)

    def test_width_respected(self, schedule):
        text = ascii_timeline(schedule, width=40)
        for line in text.splitlines()[:2]:
            assert len(line) <= 5 + 40


class TestChromeTrace:
    def test_valid_json_with_all_events(self, schedule):
        payload = json.loads(chrome_trace(schedule))
        events = payload["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        barriers = [e for e in events if e.get("ph") == "i"]
        metadata = [e for e in events if e.get("ph") == "M"]
        assert len(complete) == 5
        assert len(barriers) == 2
        assert len(metadata) == 2  # one per GPU

    def test_durations_match_jobs(self, schedule):
        payload = json.loads(chrome_trace(schedule))
        by_job = {
            e["args"]["job_id"]: e["dur"]
            for e in payload["traceEvents"]
            if e.get("ph") == "X"
        }
        assert by_job[0] == pytest.approx(10.0 * 1e6)
        assert by_job[3] == pytest.approx(3.0 * 1e6)

    def test_thread_ids_are_gpus(self, schedule):
        payload = json.loads(chrome_trace(schedule))
        tids = {
            e["tid"] for e in payload["traceEvents"] if e.get("ph") == "X"
        }
        assert tids <= {0, 1}
