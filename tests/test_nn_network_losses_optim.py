"""Tests for Network, losses, optimizers, metrics, and FLOP accounting."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    MeanSquaredError,
    Network,
    ReLU,
    SGD,
    SoftmaxCrossEntropy,
    accuracy,
    accuracy_percent,
    confusion_matrix,
    log_softmax,
    network_flops,
    per_class_accuracy,
    softmax,
)


def tiny_net(rng, input_shape=(1, 8, 8)):
    return Network(
        [
            Conv2D(1, 2, 3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(2 * 4 * 4, 3, rng=rng),
        ],
        input_shape=input_shape,
    )


class TestNetwork:
    def test_forward_shape(self, rng):
        net = tiny_net(rng)
        out = net.forward(rng.normal(size=(5, 1, 8, 8)))
        assert out.shape == (5, 3)

    def test_layer_shapes_chain(self, rng):
        net = tiny_net(rng)
        assert net.layer_shapes() == [(2, 8, 8), (2, 8, 8), (2, 4, 4), (32,), (3,)]
        assert net.output_shape() == (3,)

    def test_predict_batched_matches_single_pass(self, rng):
        net = tiny_net(rng)
        x = rng.normal(size=(10, 1, 8, 8))
        np.testing.assert_allclose(net.predict(x, batch_size=3), net.forward(x))

    def test_parameter_names_unique(self, rng):
        names = [name for name, _ in tiny_net(rng).parameters()]
        assert len(names) == len(set(names))

    def test_zero_grad_clears(self, rng):
        net = tiny_net(rng)
        x = rng.normal(size=(2, 1, 8, 8))
        out = net.forward(x, training=True)
        net.backward(np.ones_like(out))
        assert any(np.abs(p.grad).sum() > 0 for _, p in net.parameters())
        net.zero_grad()
        assert all(np.abs(p.grad).sum() == 0 for _, p in net.parameters())

    def test_summary_mentions_totals(self, rng):
        summary = tiny_net(rng).summary()
        assert "total params" in summary and "flops" in summary

    def test_introspection_requires_input_shape(self, rng):
        net = Network([Dense(4, 2, rng=rng)])
        with pytest.raises(RuntimeError, match="input_shape"):
            net.layer_shapes()


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6))

    def test_stable_for_huge_logits(self):
        probs = softmax(np.array([[1000.0, 0.0], [0.0, -1000.0]]))
        assert np.all(np.isfinite(probs))

    def test_log_softmax_consistent(self, rng):
        logits = rng.normal(size=(3, 5))
        np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        value, _ = loss(logits, np.array([0, 1]))
        assert value < 1e-6

    def test_uniform_prediction_log_n(self):
        loss = SoftmaxCrossEntropy()
        value, _ = loss(np.zeros((4, 3)), np.array([0, 1, 2, 0]))
        assert value == pytest.approx(np.log(3))

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 3, 0])
        _, grad = loss(logits, targets)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                up = logits.copy()
                up[i, j] += eps
                down = logits.copy()
                down[i, j] -= eps
                numeric = (loss(up, targets)[0] - loss(down, targets)[0]) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-6)

    def test_rejects_bad_labels(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError, match="labels"):
            loss(np.zeros((2, 3)), np.array([0, 3]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(np.zeros((2, 3)), np.array([0, 1, 0]))


class TestMSE:
    def test_zero_for_identical(self, rng):
        x = rng.normal(size=(3, 4))
        value, grad = MeanSquaredError()(x, x.copy())
        assert value == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(x))

    def test_gradient_direction(self):
        value, grad = MeanSquaredError()(np.array([[2.0]]), np.array([[1.0]]))
        assert value == pytest.approx(1.0)
        assert grad[0, 0] == pytest.approx(2.0)


class TestOptimizers:
    def _quadratic_step(self, optimizer_cls, **kwargs):
        """Minimize ||W||^2 via repeated steps; weight norm must shrink."""
        rng = np.random.default_rng(0)
        net = Network([Dense(4, 4, use_bias=False, rng=rng)])
        opt = optimizer_cls(net, **kwargs)
        w = net.layers[0].params["weight"]
        initial = float(np.linalg.norm(w.value))
        for _ in range(50):
            opt.zero_grad()
            w.grad += 2 * w.value  # d||W||^2/dW
            opt.step()
        return initial, float(np.linalg.norm(w.value))

    def test_sgd_descends(self):
        initial, final = self._quadratic_step(SGD, lr=0.05)
        assert final < 0.1 * initial

    def test_sgd_momentum_descends(self):
        initial, final = self._quadratic_step(SGD, lr=0.02, momentum=0.9)
        assert final < 0.5 * initial

    def test_adam_descends(self):
        initial, final = self._quadratic_step(Adam, lr=0.05)
        assert final < 0.5 * initial

    def test_weight_decay_shrinks_weights(self, rng):
        net = Network([Dense(3, 3, use_bias=False, rng=rng)])
        opt = SGD(net, lr=0.1, weight_decay=0.5)
        w = net.layers[0].params["weight"]
        before = np.abs(w.value).sum()
        opt.step()  # zero gradient, only decay acts
        assert np.abs(w.value).sum() < before

    def test_invalid_hyperparameters(self, rng):
        net = Network([Dense(2, 2, rng=rng)])
        with pytest.raises(Exception):
            SGD(net, lr=-0.1)
        with pytest.raises(ValueError):
            SGD(net, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam(net, lr=0.1, beta1=1.0)


class TestMetrics:
    def test_accuracy_from_logits_and_labels(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        targets = np.array([0, 1, 1])
        assert accuracy(logits, targets) == pytest.approx(2 / 3)
        assert accuracy_percent(logits, targets) == pytest.approx(100 * 2 / 3)

    def test_accuracy_from_hard_labels(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_confusion_matrix(self):
        predictions = np.array([0, 1, 1, 0])
        targets = np.array([0, 1, 0, 0])
        matrix = confusion_matrix(predictions, targets, 2)
        np.testing.assert_array_equal(matrix, [[2, 1], [0, 1]])
        assert matrix.sum() == 4

    def test_per_class_accuracy_with_absent_class(self):
        recall, present = per_class_accuracy(np.array([0, 0]), np.array([0, 0]), 2)
        assert recall[0] == 1.0
        assert recall[1] == 0.0
        assert not np.isnan(recall).any()
        assert present.tolist() == [True, False]

    def test_per_class_accuracy_all_classes_present(self):
        recall, present = per_class_accuracy(
            np.array([0, 1, 1, 0]), np.array([0, 1, 0, 0]), 2
        )
        assert present.all()
        assert recall[0] == pytest.approx(2 / 3)
        assert recall[1] == pytest.approx(1.0)


class TestFlops:
    def test_dense_flops_formula(self, rng):
        net = Network([Dense(10, 5, rng=rng)], input_shape=(10,))
        assert network_flops(net) == 2 * 10 * 5 + 5

    def test_conv_flops_formula(self, rng):
        net = Network(
            [Conv2D(2, 4, kernel_size=3, use_bias=False, rng=rng)],
            input_shape=(2, 8, 8),
        )
        # 2*k*k*cin per output element * cout * oh * ow
        assert network_flops(net) == 2 * 9 * 2 * 4 * 8 * 8

    def test_flops_monotone_in_width(self, rng):
        narrow = Network([Dense(10, 5, rng=rng)], input_shape=(10,))
        wide = Network([Dense(10, 50, rng=rng)], input_shape=(10,))
        assert network_flops(wide) > network_flops(narrow)
