"""The incremental analysis cache: warm runs re-parse only changed files."""

import textwrap

from repro.tooling import AnalysisCache, Linter, run_check
from repro.tooling.cache import CachedModule


def write_tree(root, files: dict) -> None:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")


CLEAN = "def ok():\n    return 1\n"
DIRTY = """
    import numpy as np
    def draw():
        return np.random.rand()
"""


def test_warm_run_reanalyzes_nothing_when_unchanged(tmp_path):
    write_tree(tmp_path / "pkg", {"a.py": CLEAN, "b.py": CLEAN, "c.py": DIRTY})
    cache_dir = tmp_path / "cache"
    cold = run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    warm = run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    assert cold.n_cache_hits == 0 and cold.n_analyzed == 3
    assert warm.n_cache_hits == 3 and warm.n_analyzed == 0
    # cached findings still reported, byte-identically
    assert [d.render() for d in cold.diagnostics] == [d.render() for d in warm.diagnostics]
    assert any(d.rule_id == "DET001" for d in warm.diagnostics)


def test_changed_file_is_the_only_one_reanalyzed(tmp_path):
    write_tree(tmp_path / "pkg", {"a.py": CLEAN, "b.py": CLEAN, "c.py": CLEAN})
    cache_dir = tmp_path / "cache"
    run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    (tmp_path / "pkg" / "b.py").write_text(textwrap.dedent(DIRTY), encoding="utf-8")
    warm = run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    assert warm.n_cache_hits == 2
    assert warm.n_analyzed == 1
    assert any(d.rule_id == "DET001" and d.path.endswith("b.py") for d in warm.diagnostics)


def test_reverting_a_file_hits_the_old_entry_again(tmp_path):
    write_tree(tmp_path / "pkg", {"a.py": CLEAN})
    cache_dir = tmp_path / "cache"
    run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    (tmp_path / "pkg" / "a.py").write_text("x = 2\n", encoding="utf-8")
    run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    # reverting restores the original content hash → miss is not required
    (tmp_path / "pkg" / "a.py").write_text(CLEAN, encoding="utf-8")
    warm = run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    assert warm.n_cache_hits == 1


def test_ruleset_fingerprint_change_invalidates_everything(tmp_path):
    write_tree(tmp_path / "pkg", {"a.py": CLEAN})
    cache_dir = tmp_path / "cache"
    linter = Linter()
    fp = AnalysisCache.ruleset_fingerprint(linter.rules)
    linter.lint_paths([tmp_path / "pkg"], cache=AnalysisCache(cache_dir, fingerprint=fp))
    stale = linter.lint_paths(
        [tmp_path / "pkg"], cache=AnalysisCache(cache_dir, fingerprint="different")
    )
    assert stale.n_cache_hits == 0 and stale.n_analyzed == 1


def test_fingerprint_ignores_project_scoped_rules():
    file_rules = [r for r in Linter().rules if getattr(r, "scope", "file") == "file"]
    all_fp = AnalysisCache.ruleset_fingerprint(Linter().rules)
    file_fp = AnalysisCache.ruleset_fingerprint(file_rules)
    assert all_fp == file_fp


def test_corrupt_cache_entry_is_a_miss_not_a_crash(tmp_path):
    write_tree(tmp_path / "pkg", {"a.py": CLEAN})
    cache_dir = tmp_path / "cache"
    run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    for entry in cache_dir.glob("*.pkl"):
        entry.write_bytes(b"not a pickle")
    warm = run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    assert warm.n_cache_hits == 0 and warm.n_analyzed == 1
    assert warm.exit_code == 0


def test_cache_roundtrips_comments_for_suppression_parsing(tmp_path):
    source = """
        import numpy as np
        def draw():
            return np.random.rand()  # a4nn: noqa(DET001) -- fixture exemption
    """
    write_tree(tmp_path / "pkg", {"a.py": source})
    cache_dir = tmp_path / "cache"
    cold = run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    warm = run_check([tmp_path / "pkg"], cache_dir=cache_dir)
    assert cold.exit_code == 0  # suppressed on the cold run
    assert warm.exit_code == 0  # and still suppressed when served from cache
    assert warm.n_cache_hits == 1


def test_lookup_rejects_wrong_content_hash(tmp_path):
    cache = AnalysisCache(tmp_path / "cache", fingerprint="fp")
    cache.store("x.py", "hash-one", None, [], [])
    assert isinstance(cache.lookup("x.py", "hash-one"), CachedModule)
    assert cache.lookup("x.py", "hash-two") is None


def test_python_version_change_forces_cold_reparse(tmp_path):
    # pickled ASTs are not portable across interpreters, so the
    # fingerprint folds in the running Python version: entries written
    # under one version must miss under another
    write_tree(tmp_path / "pkg", {"a.py": CLEAN, "b.py": CLEAN})
    cache_dir = tmp_path / "cache"
    rules = Linter().rules
    old = AnalysisCache(
        cache_dir,
        fingerprint=AnalysisCache.ruleset_fingerprint(rules, python_version=(3, 9, 18)),
    )
    Linter().lint_paths([tmp_path / "pkg"], cache=old)
    upgraded = AnalysisCache(
        cache_dir,
        fingerprint=AnalysisCache.ruleset_fingerprint(rules, python_version=(3, 12, 1)),
    )
    result = Linter().lint_paths([tmp_path / "pkg"], cache=upgraded)
    assert result.n_cache_hits == 0
    assert result.n_analyzed == 2


def test_tooling_version_is_part_of_the_fingerprint(monkeypatch):
    import repro.tooling.cache as cache_mod

    rules = Linter().rules
    before = AnalysisCache.ruleset_fingerprint(rules)
    monkeypatch.setattr(cache_mod, "_TOOLING_VERSION", "999.0.0")
    after = AnalysisCache.ruleset_fingerprint(rules)
    assert before != after


def test_same_engine_same_fingerprint():
    rules = Linter().rules
    assert AnalysisCache.ruleset_fingerprint(rules) == AnalysisCache.ruleset_fingerprint(rules)
