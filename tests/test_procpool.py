"""Process-parallel evaluation backend: parity, hard kills, FIFO, shm.

Covers the ISSUE-5 acceptance criteria: the process backend produces
bit-identical fitness values and lineage records to the serial path on a
seeded mini search (eval cache on and off), hung candidates are
hard-killed within the policy timeout with the worker respawned, no
worker processes leak past ``close()``, and submission order stays FIFO
under randomized per-job delays on both the thread and process pools.

The ``EvalSpec.factory`` hook keeps the direct-pool tests cheap: a
module-level zero-argument factory (picklable across the ``spawn``
boundary) builds a scripted evaluator inside the worker, so the dispatch
/ timeout / retry machinery is exercised without training anything.
"""

import json
import multiprocessing as mp
import pickle
import time

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.nas import Individual, random_genome
from repro.nas.evalcache import EvaluationCache, MemoizingEvaluator
from repro.nas.search import NSGANetConfig
from repro.scheduler.faults import (
    FaultInjectionConfig,
    FaultPolicy,
    FaultTolerantEvaluator,
)
from repro.scheduler.pool import FifoWorkerPool, JobTiming, PoolReport, WorkerPool
from repro.scheduler.procpool import EvalResult, EvalSpec, EvalTask, ProcessWorkerPool
from repro.scheduler.trace import pool_chrome_trace, pool_timeline
from repro.utils.validation import ValidationError
from repro.workflow.interfaces import WorkflowConfig
from repro.workflow.orchestrator import A4NNOrchestrator
from repro.xfel.dataset import DatasetConfig
from repro.xfel.shm import attach_dataset, share_dataset


def make_individuals(rng, n, generation=0, first_id=0):
    return [
        Individual(random_genome(rng), first_id + i, generation) for i in range(n)
    ]


class ScriptedEvaluator:
    """Deterministic scripted evaluator: delays, hangs, and scripted failures.

    Behaviour derives from ``model_id`` only, so a copy rebuilt inside a
    spawned worker acts exactly like the parent's would have.
    """

    max_epochs = 1

    def __init__(self, hang_ids=(), fail_ids=(), delay_scale=0.0):
        self.hang_ids = set(hang_ids)
        self.fail_ids = set(fail_ids)
        self.delay_scale = delay_scale

    def evaluate(self, individual):
        mid = individual.model_id
        if mid in self.hang_ids:
            time.sleep(60.0)
        if mid in self.fail_ids and individual.eval_attempt == 0:
            raise RuntimeError(f"boom {mid}")
        if self.delay_scale:
            # pseudo-random per-job delay, reproducible in any process
            time.sleep(((mid * 7919) % 5) * self.delay_scale)
        individual.fitness = 50.0 + mid
        individual.flops = 1000 + mid
        return individual


def delay_factory():
    return ScriptedEvaluator(delay_scale=0.01)


def hang_factory():
    return ScriptedEvaluator(hang_ids=(0,))


def flaky_pair_factory():
    return ScriptedEvaluator(fail_ids=(1, 3))


def flaky_single_factory():
    return ScriptedEvaluator(fail_ids=(2,))


def make_pool(factory, n_workers=2, **kwargs):
    return ProcessWorkerPool(EvalSpec(factory=factory), n_workers, **kwargs)


class TestMessageTypes:
    def test_spec_task_result_pickle_roundtrip(self, rng):
        spec = EvalSpec(
            mode="surrogate", seed=9, max_epochs=4, engine=EngineConfig(e_pred=4)
        )
        assert pickle.loads(pickle.dumps(spec)) == spec
        task = EvalTask(model_id=3, generation=1, attempt=0, genome=random_genome(rng))
        restored = pickle.loads(pickle.dumps(task))
        assert restored.model_id == 3 and restored.genome == task.genome
        result = EvalResult(model_id=3, attempt=0, fitness=81.5, flops=7)
        assert pickle.loads(pickle.dumps(result)) == result

    def test_result_transports_exception(self):
        from repro.scheduler.procpool import _encode_error

        result = EvalResult(
            model_id=0, attempt=0, error=_encode_error(RuntimeError("boom"))
        )
        exc = result.exception()
        assert isinstance(exc, RuntimeError) and str(exc) == "boom"

    def test_unpicklable_error_degrades_to_summary(self):
        from repro.scheduler.procpool import _encode_error

        class Hostile(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        exc = pickle.loads(_encode_error(Hostile("payload")))
        assert isinstance(exc, RuntimeError)
        assert "Hostile" in str(exc) and "payload" in str(exc)


class TestSharedMemory:
    def test_share_attach_roundtrip_is_bytewise_and_readonly(self, tiny_dataset):
        spec, arena = share_dataset(tiny_dataset)
        try:
            attached, handles = attach_dataset(spec)
            for name in ("x_train", "y_train", "x_test", "y_test"):
                original = getattr(tiny_dataset, name)
                view = getattr(attached, name)
                assert np.array_equal(view, original)
                assert view.dtype == original.dtype
                assert not view.flags.writeable
            with pytest.raises(ValueError):
                attached.x_train[0] = 0.0
            assert attached.n_classes == tiny_dataset.n_classes
            assert attached.image_size == tiny_dataset.image_size
            for handle in handles:
                handle.close()
        finally:
            arena.close()

    def test_spec_is_tiny_regardless_of_payload(self, tiny_dataset):
        spec, arena = share_dataset(tiny_dataset)
        try:
            # the whole point of shm: the picklable handle stays O(1)
            assert len(pickle.dumps(spec)) < 2048
            assert spec.x_train.nbytes == tiny_dataset.x_train.nbytes
        finally:
            arena.close()

    def test_arena_close_is_idempotent(self, tiny_dataset):
        _, arena = share_dataset(tiny_dataset)
        assert len(arena) == 4
        arena.close()
        assert len(arena) == 0
        arena.close()  # second close is a no-op


class TestProcessPoolDirect:
    def test_satisfies_worker_pool_protocol(self):
        pool = make_pool(delay_factory)
        assert isinstance(pool, WorkerPool)
        assert isinstance(FifoWorkerPool(ScriptedEvaluator()), WorkerPool)
        pool.close()

    def test_generation_evaluates_all_and_reports_fifo(self, rng):
        pool = make_pool(delay_factory, n_workers=2)
        try:
            individuals = make_individuals(rng, 6)
            pool.evaluate_generation(individuals)
            assert [ind.fitness for ind in individuals] == [
                50.0 + i for i in range(6)
            ]
            assert pool.alive_workers() == 2
            [report] = pool.reports
            assert report.backend == "process"
            assert report.n_jobs == 6 and report.n_workers == 2
            assert [j.job_id for j in report.jobs] == list(range(6))
            # FIFO under unequal delays: job i starts no later than job i+1
            starts = [j.start_seconds for j in report.jobs]
            assert starts == sorted(starts)
            assert report.busy_seconds > 0
            assert 0.0 < report.utilization <= 1.0
            assert len(report.worker_busy_seconds) == 2
        finally:
            pool.close()
        assert pool.alive_workers() == 0

    def test_close_is_idempotent_and_final(self, rng):
        pool = make_pool(delay_factory, n_workers=1)
        pool.evaluate_generation(make_individuals(rng, 1))
        pool.close()
        pool.close()
        assert pool.alive_workers() == 0
        with pytest.raises(RuntimeError, match="closed"):
            pool.evaluate_generation(make_individuals(rng, 1))

    def test_single_error_reraises_after_generation_settles(self, rng):
        pool = make_pool(flaky_single_factory, n_workers=2)
        try:
            individuals = make_individuals(rng, 5)
            with pytest.raises(RuntimeError, match="boom 2"):
                pool.evaluate_generation(individuals)
            assert all(
                ind.evaluated for ind in individuals if ind.model_id != 2
            )
            assert pool.reports[-1].n_jobs == 5
        finally:
            pool.close()

    def test_multiple_errors_raise_exception_group(self, rng):
        pool = make_pool(flaky_pair_factory, n_workers=2)
        try:
            with pytest.raises(ExceptionGroup) as excinfo:
                pool.evaluate_generation(make_individuals(rng, 5))
            assert sorted(str(e) for e in excinfo.value.exceptions) == [
                "boom 1",
                "boom 3",
            ]
        finally:
            pool.close()

    def test_policy_retries_transient_failure(self, rng):
        events = []
        pool = make_pool(
            flaky_pair_factory,
            n_workers=2,
            policy=FaultPolicy(max_retries=1, backoff_seconds=0.0),
            on_fault_event=lambda ind, e: events.append(
                (ind.model_id, e["kind"], e["action"])
            ),
        )
        try:
            individuals = make_individuals(rng, 5)
            pool.evaluate_generation(individuals)  # does not raise
            # the scripted failure clears on attempt 1: retried, not quarantined
            assert all(ind.evaluated and not ind.quarantined for ind in individuals)
            assert sorted(events) == [(1, "crash", "retry"), (3, "crash", "retry")]
            report = pool.reports[-1]
            # a retried job keeps ONE timing spanning both attempts
            assert len(report.jobs) == 5
        finally:
            pool.close()


class TestHardKill:
    def test_hang_is_killed_within_timeout_and_worker_respawned(self, rng):
        pool = make_pool(
            hang_factory,
            n_workers=2,
            policy=FaultPolicy(
                max_retries=1, backoff_seconds=0.0, timeout_seconds=0.5
            ),
        )
        try:
            individuals = make_individuals(rng, 4)
            start = time.monotonic()
            pool.evaluate_generation(individuals)
            elapsed = time.monotonic() - start
            # model 0 hangs 60s per attempt; two attempts were reclaimed
            # in well under one hang's duration
            assert elapsed < 30.0
            assert individuals[0].quarantined
            assert pool.n_killed == 2
            assert all(ind.evaluated for ind in individuals)
            assert [
                (e["kind"], e["action"]) for e in individuals[0].fault_events
            ] == [("timeout", "retry"), ("timeout", "quarantine")]
            # the attempts ran in killable processes: nothing leaked
            assert all(
                e["timeout_leaked"] is False for e in individuals[0].fault_events
            )
            assert all(e.timeout_leaked is False for e in pool.events)
        finally:
            pool.close()
        assert pool.alive_workers() == 0

    def test_thread_path_timeout_leaks_by_contrast(self, rng):
        # the serial/thread backends cannot kill a thread: the same
        # timeout decision carries timeout_leaked=True and the shadow
        # thread shows up in the leak accounting until it drains
        wrapped = FaultTolerantEvaluator(
            _ShortHang(), FaultPolicy(max_retries=0, timeout_seconds=0.05)
        )
        [ind] = make_individuals(rng, 1)
        wrapped.evaluate(ind)
        assert ind.quarantined
        assert ind.fault_events[0]["kind"] == "timeout"
        assert ind.fault_events[0]["timeout_leaked"] is True
        assert wrapped.n_leaked_threads() >= 1
        time.sleep(0.7)  # the abandoned attempt finishes on its own
        assert wrapped.n_leaked_threads() == 0


class _ShortHang:
    max_epochs = 1

    def evaluate(self, individual):
        time.sleep(0.5)
        individual.fitness = 1.0
        individual.flops = 1
        return individual


class TestFifoOrderThreadBackend:
    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_randomized_delays_preserve_submission_order(self, rng, n_workers):
        pool = FifoWorkerPool(ScriptedEvaluator(delay_scale=0.01), n_workers=n_workers)
        individuals = make_individuals(rng, 8)
        pool.evaluate_generation(individuals)
        [report] = pool.reports
        assert report.backend == "thread"
        assert [j.job_id for j in report.jobs] == [i.model_id for i in individuals]
        starts = [j.start_seconds for j in report.jobs]
        assert starts == sorted(starts)


def surrogate_config(backend, n_workers=1, eval_cache=True, seed=7, **kwargs):
    return WorkflowConfig(
        nas=NSGANetConfig(
            population_size=5,
            offspring_per_generation=5,
            generations=2,
            max_epochs=4,
        ),
        engine=EngineConfig(e_pred=4),
        mode="surrogate",
        n_gpus=(1,),
        seed=seed,
        backend=backend,
        n_workers=n_workers,
        eval_cache=eval_cache,
        **kwargs,
    )


def run_trail(result):
    """Everything that must be bit-identical across backends."""
    archive = sorted(
        (i.model_id, i.fitness, i.flops, i.cache_hit, i.cache_source)
        for i in result.search.archive
    )
    records = {
        model_id: (
            [
                (e["epoch"], e["validation_accuracy"], e.get("prediction"))
                for e in record.epochs
            ],
            [
                (e["attempt"], e["kind"], e["action"])
                for e in (record.fault_events or [])
            ],
            record.quarantined,
        )
        for model_id, record in result.tracker.records.items()
    }
    return archive, records


class TestBackendParitySurrogate:
    @pytest.mark.parametrize("eval_cache", [True, False])
    def test_process_is_bit_identical_to_serial(self, eval_cache):
        serial = A4NNOrchestrator(surrogate_config("serial", eval_cache=eval_cache))
        r_serial = serial.run()
        process = A4NNOrchestrator(
            surrogate_config("process", 2, eval_cache=eval_cache)
        )
        r_process = process.run()
        assert run_trail(r_process) == run_trail(r_serial)
        if eval_cache:
            # leaders evaluated remotely must count misses/prime entries
            # exactly like local lookups
            assert (
                process.memoizer.cache.stats() == serial.memoizer.cache.stats()
            )
        # the run closed its pool: reports stashed, workers gone
        assert process.pool is None
        assert not [
            p for p in mp.active_children() if p.name.startswith("a4nn-eval-worker")
        ]
        assert [r.backend for r in process.pool_reports] == ["process"] * 2
        assert [r.backend for r in serial.pool_reports] == ["serial"] * 2

    def test_fault_injection_parity(self):
        def faulty(backend, n_workers):
            return surrogate_config(
                backend,
                n_workers,
                eval_cache=False,
                seed=3,
                faults=FaultPolicy(
                    max_retries=1, backoff_seconds=0.0, timeout_seconds=2.0
                ),
                fault_injection=FaultInjectionConfig(
                    rate=0.3, modes=("crash", "hang", "nan"), hang_seconds=30.0
                ),
            )

        r_serial = A4NNOrchestrator(faulty("serial", 1)).run()
        r_process = A4NNOrchestrator(faulty("process", 2)).run()
        assert run_trail(r_process) == run_trail(r_serial)
        assert r_process.search.n_quarantined == r_serial.search.n_quarantined


class TestBackendParityReal:
    def test_shared_memory_training_matches_serial(self):
        def real_config(backend, n_workers):
            return WorkflowConfig(
                nas=NSGANetConfig(
                    population_size=4,
                    offspring_per_generation=4,
                    generations=2,
                    max_epochs=3,
                ),
                engine=EngineConfig(e_pred=3),
                dataset=DatasetConfig(images_per_class=8, image_size=12),
                mode="real",
                n_gpus=(1,),
                seed=11,
                backend=backend,
                n_workers=n_workers,
            )

        serial = A4NNOrchestrator(real_config("serial", 1))
        r_serial = serial.run()
        process = A4NNOrchestrator(real_config("process", 2))
        r_process = process.run()
        assert run_trail(r_process) == run_trail(r_serial)
        assert process.memoizer.cache.stats() == serial.memoizer.cache.stats()
        # run() closed the pool, which also released the shm arena
        assert process.pool is None
        assert not [
            p for p in mp.active_children() if p.name.startswith("a4nn-eval-worker")
        ]


class _StubBase:
    """Minimal memoization base: constant-keyed, observerless."""

    def __init__(self, key=("k",)):
        self.key = key
        self.observers = []

    def memo_key(self, individual):
        return self.key


class TestRegisterRemote:
    def test_record_miss_counts_outside_lookup(self):
        cache = EvaluationCache()
        cache.record_miss()
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 1}

    def _clean_individual(self, rng, model_id=0):
        [ind] = make_individuals(rng, 1, first_id=model_id)
        ind.fitness = 90.0
        ind.flops = 123
        ind.result = {"proxy": True}
        ind.epoch_seconds = [0.1]
        return ind

    def test_clean_leader_primes_cache_and_counts_miss(self, rng):
        base = _StubBase()
        memo = MemoizingEvaluator(base, base)
        leader = self._clean_individual(rng)
        memo.register_remote(leader, [(1, 90.0, None)])
        assert memo.cache.stats() == {"entries": 1, "hits": 0, "misses": 1}
        entry = memo.cache.peek(base.key)
        assert entry.source_model_id == leader.model_id
        assert entry.epoch_trace == [(1, 90.0, None)]

    def test_faulted_leader_counts_miss_but_never_caches(self, rng):
        base = _StubBase()
        memo = MemoizingEvaluator(base, base)
        faulted = self._clean_individual(rng)
        faulted.fault_events.append({"kind": "crash", "action": "retry"})
        memo.register_remote(faulted, [])
        assert memo.cache.stats() == {"entries": 0, "hits": 0, "misses": 1}

    def test_unkeyed_leader_is_ignored(self, rng):
        base = _StubBase(key=None)
        memo = MemoizingEvaluator(base, base)
        memo.register_remote(self._clean_individual(rng), [])
        assert memo.cache.stats() == {"entries": 0, "hits": 0, "misses": 0}


class TestWorkflowConfigBackend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="backend"):
            WorkflowConfig(backend="mpi")

    def test_serial_requires_single_worker(self):
        with pytest.raises(ValidationError, match="serial"):
            WorkflowConfig(backend="serial", n_workers=2)

    def test_process_cannot_checkpoint_models(self):
        with pytest.raises(ValidationError, match="checkpoint"):
            WorkflowConfig(backend="process", checkpoint_models=True)

    def test_backend_roundtrips_and_defaults_to_thread(self):
        config = WorkflowConfig(backend="process", n_workers=4)
        restored = WorkflowConfig.from_dict(config.to_dict())
        assert restored.backend == "process" and restored.n_workers == 4
        payload = config.to_dict()
        del payload["backend"]
        assert WorkflowConfig.from_dict(payload).backend == "thread"


class TestPoolTraceRendering:
    def _report(self):
        return PoolReport(
            n_workers=2,
            wall_seconds=10.0,
            n_jobs=3,
            backend="process",
            jobs=(
                JobTiming(0, 0, 0.0, 4.0),
                JobTiming(1, 1, 0.0, 10.0),
                JobTiming(2, 0, 4.0, 7.0),
            ),
            worker_busy_seconds=(7.0, 10.0),
        )

    def test_barrier_downtime_per_worker(self):
        report = self._report()
        assert report.barrier_downtime() == [3.0, 0.0]
        assert report.busy_seconds == 17.0
        assert report.idle_seconds == 3.0
        assert report.utilization == pytest.approx(0.85)
        payload = report.to_dict()
        assert payload["barrier_downtime_seconds"] == [3.0, 0.0]
        assert [j["job_id"] for j in payload["jobs"]] == [0, 1, 2]

    def test_pool_timeline_renders_lanes_and_downtime(self):
        text = pool_timeline(self._report(), width=40)
        assert "worker0" in text and "worker1" in text
        assert "backend=process" in text
        assert "w0=3.00s" in text and "w1=0.00s" in text
        assert pool_timeline(PoolReport(1, 0.0, 0)) == "(empty pool report)"
        with pytest.raises(ValueError):
            pool_timeline(self._report(), width=5)

    def test_pool_chrome_trace_is_loadable_json(self):
        payload = json.loads(pool_chrome_trace(self._report()))
        events = payload["traceEvents"]
        jobs = [e for e in events if e.get("cat") == "eval-process"]
        assert len(jobs) == 3
        assert jobs[1]["dur"] == pytest.approx(10.0 * 1e6)
        barriers = [e for e in events if e.get("cat") == "barrier"]
        assert [b["tid"] for b in barriers] == [0]  # only worker 0 idles
        names = [e for e in events if e.get("ph") == "M"]
        assert len(names) == 2


class TestStreamingSeam:
    """The submit/settled/finish seam steady-state evolution runs on."""

    def test_thread_stream_settles_all_and_reports_once(self, rng):
        pool = FifoWorkerPool(ScriptedEvaluator(delay_scale=0.005), n_workers=2)
        individuals = make_individuals(rng, 5)
        for ind in individuals:
            pool.submit(ind)
        settled = [pool.settled() for _ in range(5)]
        assert sorted(ind.model_id for ind in settled) == list(range(5))
        assert all(ind.fitness == 50.0 + ind.model_id for ind in settled)
        report = pool.finish()
        assert report.n_jobs == 5
        assert report.backend == "thread"
        assert pool.reports == [report]
        assert pool.finish() is None  # idempotent once drained
        pool.close()

    def test_thread_stream_serial_backend_label(self, rng):
        pool = FifoWorkerPool(ScriptedEvaluator(), n_workers=1)
        pool.submit(make_individuals(rng, 1)[0])
        pool.settled()
        assert pool.finish().backend == "serial"

    def test_settled_without_submissions_raises(self):
        pool = FifoWorkerPool(ScriptedEvaluator(), n_workers=2)
        with pytest.raises(RuntimeError, match="no evaluations in flight"):
            pool.settled()

    def test_stream_error_propagates_at_settle(self, rng):
        pool = FifoWorkerPool(ScriptedEvaluator(fail_ids=(0,)), n_workers=1)
        pool.submit(make_individuals(rng, 1)[0])
        with pytest.raises(RuntimeError, match="boom 0"):
            pool.settled()
        pool.close()

    def test_close_flushes_open_stream_report(self, rng):
        pool = FifoWorkerPool(ScriptedEvaluator(), n_workers=2)
        pool.submit(make_individuals(rng, 1)[0])
        pool.settled()
        pool.close()  # stream never finished explicitly
        assert len(pool.reports) == 1 and pool.reports[0].n_jobs == 1

    def test_process_stream_settles_all_and_reports_once(self, rng):
        pool = make_pool(delay_factory, n_workers=2)
        try:
            individuals = make_individuals(rng, 5)
            for ind in individuals:
                pool.submit(ind)
            settled = [pool.settled() for _ in range(5)]
            assert sorted(ind.model_id for ind in settled) == list(range(5))
            assert all(ind.fitness == 50.0 + ind.model_id for ind in settled)
            report = pool.finish()
            assert report.n_jobs == 5
            assert report.backend == "process"
            assert pool.reports == [report]
            with pytest.raises(RuntimeError, match="no evaluations in flight"):
                pool.settled()
        finally:
            pool.close()

    def test_process_batch_entry_rejected_while_stream_open(self, rng):
        pool = make_pool(delay_factory, n_workers=2)
        try:
            pool.submit(make_individuals(rng, 1)[0])
            with pytest.raises(RuntimeError, match="stream is open"):
                pool.evaluate_generation(make_individuals(rng, 2, first_id=5))
            pool.settled()
            pool.finish()
        finally:
            pool.close()


class TestIdleWorkerAccounting:
    def _oversized_report(self):
        # 3-worker pool, but only worker 0 ever ran a job
        return PoolReport(
            n_workers=3,
            wall_seconds=10.0,
            n_jobs=2,
            backend="thread",
            jobs=(JobTiming(0, 0, 0.0, 4.0), JobTiming(1, 0, 4.0, 8.0)),
            worker_busy_seconds=(8.0, 0.0, 0.0),
        )

    def test_never_scheduled_workers_not_charged_barrier_downtime(self):
        report = self._oversized_report()
        assert report.barrier_downtime() == [2.0, 0.0, 0.0]
        assert report.idle_workers == 2
        payload = report.to_dict()
        assert payload["idle_workers"] == 2
        assert payload["barrier_downtime_seconds"] == [2.0, 0.0, 0.0]

    def test_timeline_marks_idle_workers(self):
        text = pool_timeline(self._oversized_report(), width=40)
        assert "w0=2.00s" in text
        assert "w1=idle" in text and "w2=idle" in text
        assert "idle workers: 2 never scheduled" in text

    def test_chrome_trace_labels_idle_lanes(self):
        payload = json.loads(pool_chrome_trace(self._oversized_report()))
        idle = [e for e in payload["traceEvents"] if e.get("cat") == "idle"]
        assert sorted(e["tid"] for e in idle) == [1, 2]
        assert all(e["dur"] == pytest.approx(10.0 * 1e6) for e in idle)
        barriers = [e for e in payload["traceEvents"] if e.get("cat") == "barrier"]
        assert [b["tid"] for b in barriers] == [0]


class TestScalingReport:
    def _entry(self, backend, n_workers, best=91.0):
        return {
            "backend": backend,
            "n_workers": n_workers,
            "wall_seconds": 1.0,
            "n_models": 10,
            "best_fitness": best,
            "epochs_trained": 24,
            "generations": [],
        }

    def test_consistency_flags_divergent_outcomes(self):
        from repro.bench.scaling import ScalingReport

        report = ScalingReport(
            seed=21,
            host_cpus=1,
            entries=[self._entry("serial", 1), self._entry("process", 2)],
        )
        assert report.consistent()
        report.entries.append(self._entry("thread", 2, best=50.0))
        assert not report.consistent()
        assert "DETERMINISM BROKEN" in report.summary()

    def test_roundtrip_and_single_core_note(self, tmp_path):
        from repro.bench.scaling import ScalingReport

        report = ScalingReport(
            seed=21, host_cpus=1, entries=[self._entry("serial", 1)]
        )
        path = report.save(tmp_path / "scaling.json")
        restored = ScalingReport.load(path)
        assert restored.entries == report.entries
        assert "single-core host" in restored.summary()

    def test_consistency_is_per_evolution_mode(self):
        from repro.bench.scaling import ScalingReport

        # steady and barrier trajectories legitimately differ; the
        # determinism check must only compare within each mode
        report = ScalingReport(
            seed=21,
            host_cpus=1,
            entries=[
                self._entry("serial", 1),
                self._entry("thread", 2),
                dict(self._entry("serial", 1, best=77.0), evolution="steady"),
                dict(self._entry("thread", 4, best=77.0), evolution="steady"),
            ],
        )
        assert report.consistent()
        report.entries.append(
            dict(self._entry("process", 4, best=33.0), evolution="steady")
        )
        assert not report.consistent()
        assert "DETERMINISM BROKEN" in report.summary()

    def test_summary_labels_steady_entries(self):
        from repro.bench.scaling import ScalingReport

        entry = dict(
            self._entry("thread", 4),
            evolution="steady",
            busy_seconds=3.5,
            idle_seconds=0.5,
            barrier_downtime_seconds=[[0.0, 0.0, 0.0, 0.25]],
            mid_run_barrier_downtime_seconds=0.0,
            final_drain_seconds=0.25,
        )
        text = ScalingReport(seed=21, host_cpus=8, entries=[entry]).summary()
        assert "thread@4/steady" in text
        assert "mid-run" in text and "drain" in text

    def test_compare_is_structural_only(self):
        from repro.bench.scaling import ScalingReport, compare_scaling

        fresh = ScalingReport(
            seed=21, host_cpus=1, entries=[self._entry("serial", 1)]
        )
        same = ScalingReport(
            seed=21,
            host_cpus=64,
            entries=[dict(self._entry("serial", 1), wall_seconds=99.0)],
        )
        diff = compare_scaling(fresh, same)
        assert "DIFF" not in diff
        worse = ScalingReport(
            seed=21, host_cpus=1, entries=[self._entry("serial", 1, best=12.0)]
        )
        assert "DIFF" in compare_scaling(fresh, worse)
