"""Tests for learning-rate schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineAnnealing,
    Dense,
    ExponentialDecay,
    Network,
    SGD,
    StepDecay,
    Trainer,
    clip_grad_norm,
)


def net(rng):
    return Network([Dense(4, 4, rng=rng)], input_shape=(4,))


class TestStepDecay:
    def test_decays_at_boundaries(self, rng):
        schedule = StepDecay(SGD(net(rng), lr=1.0), step_size=3, gamma=0.1)
        lrs = [schedule.step() for _ in range(7)]
        assert lrs[:2] == [1.0, 1.0]        # epochs 1-2
        assert lrs[2] == pytest.approx(0.1)  # epoch 3 crosses the boundary
        assert lrs[5] == pytest.approx(0.01)

    def test_validation(self, rng):
        with pytest.raises(Exception):
            StepDecay(SGD(net(rng), lr=1.0), step_size=0)
        with pytest.raises(ValueError):
            StepDecay(SGD(net(rng), lr=1.0), gamma=0.0)


class TestExponentialDecay:
    def test_geometric(self, rng):
        schedule = ExponentialDecay(SGD(net(rng), lr=1.0), gamma=0.5)
        lrs = [schedule.step() for _ in range(3)]
        assert lrs == [pytest.approx(0.5), pytest.approx(0.25), pytest.approx(0.125)]


class TestCosineAnnealing:
    def test_monotone_to_min(self, rng):
        schedule = CosineAnnealing(SGD(net(rng), lr=0.1), t_max=10, min_lr=0.01)
        lrs = [schedule.step() for _ in range(12)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))
        assert lrs[9] == pytest.approx(0.01)
        # clamps past t_max
        assert lrs[11] == pytest.approx(0.01)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            CosineAnnealing(SGD(net(rng), lr=0.1), t_max=10, min_lr=0.5)

    def test_updates_optimizer_lr(self, rng):
        opt = SGD(net(rng), lr=0.1)
        schedule = CosineAnnealing(opt, t_max=4)
        schedule.step()
        assert opt.lr < 0.1


class TestClipGradNorm:
    def test_large_gradients_scaled(self, rng):
        network = net(rng)
        for _, param in network.parameters():
            param.grad += 10.0
        pre = clip_grad_norm(network, 1.0)
        assert pre > 1.0
        post = np.sqrt(sum(float(np.sum(p.grad**2)) for _, p in network.parameters()))
        assert post == pytest.approx(1.0, rel=1e-6)

    def test_small_gradients_untouched(self, rng):
        network = net(rng)
        for _, param in network.parameters():
            param.grad += 0.001
        before = [p.grad.copy() for _, p in network.parameters()]
        clip_grad_norm(network, 1.0)
        for (_, param), prev in zip(network.parameters(), before):
            np.testing.assert_array_equal(param.grad, prev)

    def test_invalid_max_norm(self, rng):
        with pytest.raises(ValueError):
            clip_grad_norm(net(rng), 0.0)


class TestTrainerIntegration:
    def test_schedule_steps_per_epoch(self, rng, tiny_dataset):
        network = Network(
            [Dense(16 * 16, 2, rng=rng)], input_shape=(256,), name="flat"
        )
        # flat dense net needs flattened images
        x_train = tiny_dataset.x_train.reshape(len(tiny_dataset.x_train), -1)
        x_test = tiny_dataset.x_test.reshape(len(tiny_dataset.x_test), -1)
        optimizer = Adam(network, 1e-2)
        schedule = ExponentialDecay(optimizer, gamma=0.5)
        trainer = Trainer(
            network,
            x_train,
            tiny_dataset.y_train,
            x_test,
            tiny_dataset.y_test,
            optimizer=optimizer,
            rng=rng,
            schedule=schedule,
            max_grad_norm=5.0,
        )
        trainer.train()
        assert optimizer.lr == pytest.approx(5e-3)
        trainer.train()
        assert optimizer.lr == pytest.approx(2.5e-3)
