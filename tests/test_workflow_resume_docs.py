"""Documentation-contract tests: public API surface and doc coverage.

A downstream user's first contact is ``import repro``; these tests pin
the public surface (every ``__all__`` name resolves, every public item
has a docstring) so refactors cannot silently break the documented API.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.nn",
    "repro.nn.layers",
    "repro.xfel",
    "repro.nas",
    "repro.workflow",
    "repro.scheduler",
    "repro.lineage",
    "repro.analysis",
    "repro.baselines",
    "repro.experiments",
    "repro.utils",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
class TestPublicSurface:
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{module_name}: undocumented {undocumented}"


class TestVersioning:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestLayerRegistryConsistency:
    def test_every_registered_layer_reconstructible_from_defaults(self):
        """LAYER_TYPES entries must accept their own get_config output."""
        import numpy as np

        from repro.nas.decoder import PhaseBlock
        from repro.nn.layers import LAYER_TYPES, Conv2D, Dense
        from repro.nn.layers.norm import BatchNorm1D, BatchNorm2D

        rng = np.random.default_rng(0)
        samples = {
            "Dense": Dense(3, 2, rng=rng),
            "Conv2D": Conv2D(1, 2, rng=rng),
            "BatchNorm1D": BatchNorm1D(3),
            "BatchNorm2D": BatchNorm2D(3),
            "PhaseBlock": PhaseBlock(2, (1, 0), 1, 2, rng=rng),
        }
        for name, cls in LAYER_TYPES.items():
            layer = samples.get(name) or cls()
            rebuilt = cls(**layer.get_config())
            assert type(rebuilt) is cls
