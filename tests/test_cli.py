"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.utils.io import atomic_write_json


def small_config_dict(intensity="medium", mode="surrogate", seed=5):
    """A fast WorkflowConfig document for CLI runs."""
    return {
        "nas": {
            "population_size": 3,
            "offspring_per_generation": 3,
            "generations": 2,
            "max_epochs": 12,
        },
        "engine": {"e_pred": 12, "tolerance": 1.0},
        "dataset": {"intensity": intensity, "images_per_class": 20, "image_size": 16},
        "mode": mode,
        "seed": seed,
    }


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.intensity == "medium"
        assert args.mode == "surrogate"
        assert args.seed == 42

    def test_rejects_unknown_intensity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--intensity", "ultra"])

    def test_sanitize_writes_flag_flows_into_overrides(self):
        from repro.cli import _fastpath_overrides

        args = build_parser().parse_args(["run", "--sanitize-writes"])
        assert _fastpath_overrides(args).get("sanitize_writes") is True
        args = build_parser().parse_args(["run"])
        assert "sanitize_writes" not in _fastpath_overrides(args)

    def test_check_jobs_flag(self):
        args = build_parser().parse_args(["check", "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["check"]).jobs is None


class TestConfigCommand:
    def test_emits_valid_workflow_config(self, capsys):
        assert main(["config", "--intensity", "low", "--seed", "9"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dataset"]["intensity"] == "low"
        assert payload["seed"] == 9

        from repro.workflow import WorkflowConfig

        rebuilt = WorkflowConfig.from_dict(payload)
        assert rebuilt.intensity.label == "low"


class TestRunCommand:
    def test_run_with_config_file_and_commons(self, tmp_path, capsys):
        config_path = atomic_write_json(tmp_path / "cfg.json", small_config_dict())
        commons_dir = tmp_path / "commons"
        code = main(
            ["run", "--config", str(config_path), "--commons", str(commons_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "networks evaluated: 6" in out
        assert "wall time 1 gpu" in out
        assert (commons_dir / "manifest.json").exists()

    def test_fault_flags_override_config_document(self, tmp_path, capsys):
        config_path = atomic_write_json(tmp_path / "cfg.json", small_config_dict())
        code = main(
            [
                "run",
                "--config",
                str(config_path),
                "--max-retries",
                "1",
                "--inject-faults",
                "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "quarantined" in out

    def test_fault_flags_build_policy_without_config(self):
        from repro.cli import _fault_settings_from_args

        args = build_parser().parse_args(
            ["run", "--max-retries", "3", "--eval-timeout", "60", "--retry-backoff", "2"]
        )
        policy, injection = _fault_settings_from_args(args)
        assert policy.max_retries == 3
        assert policy.timeout_seconds == 60.0
        assert policy.backoff_seconds == 2.0
        assert injection is None

        args = build_parser().parse_args(["run", "--inject-faults", "0.25"])
        policy, injection = _fault_settings_from_args(args)
        assert policy is not None  # injection alone enables the policy
        assert injection.rate == 0.25
        assert injection.modes == ("crash", "hang", "nan")

        args = build_parser().parse_args(["run"])
        assert _fault_settings_from_args(args) == (None, None)

    def test_compare_reports_savings(self, tmp_path, capsys):
        config_path = atomic_write_json(tmp_path / "cfg.json", small_config_dict(seed=0))
        code = main(["compare", "--config", str(config_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "epochs saved" in out
        assert "A4NN vs standalone" in out


class TestAnalyzeCommand:
    def test_analyze_published_run(self, tmp_path, capsys):
        config_path = atomic_write_json(tmp_path / "cfg.json", small_config_dict())
        commons_dir = tmp_path / "commons"
        main(["run", "--config", str(config_path), "--commons", str(commons_dir)])
        capsys.readouterr()
        code = main(["analyze", "--commons", str(commons_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "pareto frontier" in out
        assert "terminated early" in out

    def test_analyze_empty_commons_fails(self, tmp_path, capsys):
        code = main(["analyze", "--commons", str(tmp_path / "empty")])
        assert code == 1
        assert "no runs" in capsys.readouterr().err
