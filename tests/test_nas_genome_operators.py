"""Tests for genome encoding and genetic operators."""

import numpy as np
import pytest

from repro.nas.genome import Genome, PhaseGenome, n_connection_bits, random_genome
from repro.nas.operators import bitflip_mutation, point_crossover, uniform_crossover


class TestPhaseGenome:
    def test_bit_width(self):
        assert n_connection_bits(4) == 6
        # 6 connection bits + 1 skip bit
        phase = PhaseGenome(4, (1, 0, 1, 0, 1, 0, 1))
        assert phase.skip

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="needs 7 bits"):
            PhaseGenome(4, (1, 0, 1))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError, match="0/1"):
            PhaseGenome(2, (2, 0))

    def test_connection_matrix_layout(self):
        # bits order: (0,1), (0,2), (1,2), skip
        phase = PhaseGenome(3, (1, 0, 1, 0))
        matrix = phase.connection_matrix()
        assert matrix[0, 1] and matrix[1, 2] and not matrix[0, 2]
        assert not phase.skip

    def test_predecessors_successors(self):
        phase = PhaseGenome(3, (1, 0, 1, 0))
        assert phase.predecessors(2) == [1]
        assert phase.successors(0) == [1]
        assert phase.predecessors(0) == []

    def test_n_connections_excludes_skip(self):
        phase = PhaseGenome(3, (1, 1, 1, 1))
        assert phase.n_connections == 3


class TestGenome:
    def test_bits_round_trip(self, rng):
        genome = random_genome(rng, n_phases=3, nodes_per_phase=4)
        rebuilt = Genome.from_bits(genome.to_bits(), genome.nodes_per_phase)
        assert rebuilt == genome
        assert rebuilt.key() == genome.key()

    def test_dict_round_trip(self, rng):
        genome = random_genome(rng)
        assert Genome.from_dict(genome.to_dict()) == genome

    def test_paper_layout_bit_count(self, rng):
        genome = random_genome(rng, n_phases=3, nodes_per_phase=4)
        assert len(genome.to_bits()) == 3 * 7

    def test_from_bits_length_mismatch(self):
        with pytest.raises(ValueError):
            Genome.from_bits((0, 1, 0), (4,))

    def test_empty_genome_rejected(self):
        with pytest.raises(ValueError):
            Genome(())

    def test_key_format(self, rng):
        genome = random_genome(rng, n_phases=2, nodes_per_phase=3)
        parts = genome.key().split("-")
        assert len(parts) == 2
        assert all(len(p) == 4 and set(p) <= {"0", "1"} for p in parts)

    def test_random_genome_density(self, rng):
        dense = random_genome(rng, density=1.0)
        assert all(b == 1 for b in dense.to_bits())
        sparse = random_genome(rng, density=0.0)
        assert all(b == 0 for b in sparse.to_bits())


class TestCrossover:
    def test_uniform_children_bits_come_from_parents(self, rng):
        a = random_genome(rng)
        b = random_genome(rng)
        child_a, child_b = uniform_crossover(a, b, rng)
        for bit_a, bit_b, pa, pb in zip(
            child_a.to_bits(), child_b.to_bits(), a.to_bits(), b.to_bits()
        ):
            assert {bit_a, bit_b} == {pa, pb}

    def test_point_crossover_preserves_prefix_suffix(self, rng):
        a = Genome.from_bits((0,) * 21, (4, 4, 4))
        b = Genome.from_bits((1,) * 21, (4, 4, 4))
        child_a, child_b = point_crossover(a, b, rng)
        bits_a = child_a.to_bits()
        # exactly one 0->1 switch point
        transitions = sum(
            1 for i in range(len(bits_a) - 1) if bits_a[i] != bits_a[i + 1]
        )
        assert transitions == 1

    def test_incompatible_layouts_rejected(self, rng):
        a = random_genome(rng, nodes_per_phase=4)
        b = random_genome(rng, nodes_per_phase=3)
        with pytest.raises(ValueError, match="phase layouts"):
            uniform_crossover(a, b, rng)

    def test_swap_probability_zero_clones(self, rng):
        a, b = random_genome(rng), random_genome(rng)
        child_a, child_b = uniform_crossover(a, b, rng, swap_probability=0.0)
        assert child_a == a and child_b == b


class TestMutation:
    def test_rate_one_flips_everything(self, rng):
        genome = random_genome(rng)
        mutated = bitflip_mutation(genome, rng, rate=1.0)
        assert all(m == 1 - g for m, g in zip(mutated.to_bits(), genome.to_bits()))

    def test_rate_zero_is_identity(self, rng):
        genome = random_genome(rng)
        assert bitflip_mutation(genome, rng, rate=0.0) == genome

    def test_default_rate_flips_about_one_bit(self, rng):
        genome = random_genome(rng)
        flips = []
        for _ in range(300):
            mutated = bitflip_mutation(genome, rng)
            flips.append(
                sum(m != g for m, g in zip(mutated.to_bits(), genome.to_bits()))
            )
        assert 0.5 < np.mean(flips) < 1.5

    def test_layout_preserved(self, rng):
        genome = random_genome(rng, n_phases=2, nodes_per_phase=3)
        mutated = bitflip_mutation(genome, rng, rate=0.5)
        assert mutated.nodes_per_phase == genome.nodes_per_phase

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            bitflip_mutation(random_genome(rng), rng, rate=1.5)
