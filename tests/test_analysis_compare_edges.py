"""Edge-case tests for paired-run comparison analytics."""

import math

import pytest

from repro.analysis import compare_runs
from repro.lineage.records import ModelRecord
from repro.nas import random_genome


def record(model_id, fitness, flops, rng, generation=0, epochs=25):
    return ModelRecord(
        model_id=model_id,
        generation=generation,
        genome=random_genome(rng).to_dict(),
        fitness=fitness,
        flops=flops,
        epochs_trained=epochs,
        max_epochs=25,
    )


class TestCompareEdges:
    def test_identical_runs_are_neutral(self, rng):
        a = [record(i, 90.0 + i, 100 * (i + 1), rng) for i in range(5)]
        b = [record(10 + i, 90.0 + i, 100 * (i + 1), rng) for i in range(5)]
        comparison = compare_runs(a, b)
        assert comparison.epochs_saved_percent == 0.0
        assert comparison.best_fitness_delta == 0.0
        assert comparison.hypervolume_ratio == pytest.approx(1.0)

    def test_single_point_frontiers(self, rng):
        a = [record(0, 95.0, 100, rng)]
        b = [record(1, 90.0, 100, rng)]
        comparison = compare_runs(a, b)
        assert comparison.frontier_sizes == (1, 1)
        # degenerate shared box: ratio may be nan but must not raise
        assert isinstance(comparison.hypervolume_ratio, float)

    def test_unevaluated_records_excluded_from_means(self, rng):
        a = [record(0, 95.0, 100, rng), record(1, None, None, rng)]
        b = [record(2, 90.0, 100, rng)]
        comparison = compare_runs(a, b)
        means_a, _ = comparison.mean_generation_fitness
        assert means_a[0] == 95.0

    def test_negative_savings_when_a_trains_more(self, rng):
        a = [record(0, 95.0, 100, rng, epochs=25)]
        b = [record(1, 90.0, 100, rng, epochs=10)]
        comparison = compare_runs(a, b)
        assert comparison.epochs_saved_percent < 0
