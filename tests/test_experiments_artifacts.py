"""Tests for the cheap experiment artifacts (Fig. 5; report plumbing)."""

import numpy as np
import pytest

from repro.experiments.fig5_intensities import format_fig5, run_fig5
from repro.xfel import BeamIntensity


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(image_size=24)

    def test_all_intensities_present(self, result):
        assert set(result.noisy) == {i.label for i in BeamIntensity}
        for image in result.noisy.values():
            assert image.shape == (24, 24)
            assert np.all(image >= 0)

    def test_photon_budget_scaling(self, result):
        assert result.photons["medium"] > 5 * result.photons["low"]
        assert result.photons["high"] > 5 * result.photons["medium"]

    def test_snr_ordering(self, result):
        assert result.snr_db["low"] < result.snr_db["medium"] < result.snr_db["high"]

    def test_zero_fraction_ordering(self, result):
        assert result.zero_fraction["low"] > result.zero_fraction["high"]

    def test_format_renders_checks(self, result):
        report = format_fig5(result)
        assert "Figure 5" in report
        assert "[ok]" in report
        assert "MISMATCH" not in report

    def test_deterministic_per_seed(self):
        a = run_fig5(image_size=16, seed=5)
        b = run_fig5(image_size=16, seed=5)
        for label in a.noisy:
            np.testing.assert_array_equal(a.noisy[label], b.noisy[label])
