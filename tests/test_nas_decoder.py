"""Tests for the genome → network decoder and PhaseBlock routing."""

import numpy as np
import pytest

from repro.nas.decoder import DecoderConfig, PhaseBlock, decode_genome
from repro.nas.genome import Genome, PhaseGenome, random_genome
from repro.nn import load_checkpoint, save_checkpoint
from repro.nn.layers import Dense, GlobalAvgPool2D, MaxPool2D
from repro.nn.losses import SoftmaxCrossEntropy


class TestPhaseBlockRouting:
    def test_no_connections_sums_all_nodes(self, rng):
        # bits all zero: every node reads the input, all are sinks
        block = PhaseBlock(3, (0, 0, 0, 0), 1, 2, rng=rng)
        assert block._preds == [[], [], []]
        assert block._sinks == [0, 1, 2]

    def test_chain_topology(self, rng):
        # 3 nodes, connections (0,1) and (1,2): single chain, node2 is sink
        block = PhaseBlock(3, (1, 0, 1, 0), 1, 2, rng=rng)
        assert block._preds == [[], [0], [1]]
        assert block._sinks == [2]

    def test_skip_adds_input_to_output(self, rng):
        bits_no_skip = (0, 0, 0, 0)
        bits_skip = (0, 0, 0, 1)
        x = rng.normal(size=(2, 1, 4, 4))
        block_a = PhaseBlock(3, bits_no_skip, 1, 2, rng=np.random.default_rng(0))
        block_b = PhaseBlock(3, bits_skip, 1, 2, rng=np.random.default_rng(0))
        out_a = block_a.forward(x)
        out_b = block_b.forward(x)
        adapted = block_b.adapter.forward(x)
        np.testing.assert_allclose(out_b, out_a + adapted, atol=1e-10)

    def test_output_shape_and_flops(self, rng):
        block = PhaseBlock(4, (1,) * 7, 3, 8, rng=rng)
        assert block.output_shape((3, 10, 10)) == (8, 10, 10)
        assert block.flops((3, 10, 10)) > 0
        with pytest.raises(ValueError):
            block.output_shape((2, 10, 10))

    def test_parameters_prefixed_and_unique(self, rng):
        block = PhaseBlock(3, (1, 0, 1, 1), 2, 4, rng=rng)
        names = [name for name, _ in block.parameters()]
        assert len(names) == len(set(names))
        assert any(name.startswith("adapter.") for name in names)
        assert any(name.startswith("node0.conv.") for name in names)

    def test_state_round_trip(self, rng):
        block = PhaseBlock(2, (1, 0), 1, 3, rng=rng)
        block.forward(rng.normal(size=(4, 1, 4, 4)), training=True)
        state = block.state()
        assert any("bn.running_mean" in k for k in state)
        fresh = PhaseBlock(2, (1, 0), 1, 3, rng=np.random.default_rng(1))
        fresh.load_state(state)
        for key, value in fresh.state().items():
            np.testing.assert_array_equal(value, state[key])


class TestDecodeGenome:
    def test_structure(self, rng):
        genome = random_genome(rng)
        net = decode_genome(genome, DecoderConfig((1, 16, 16), 2, (4, 8, 12)), rng=rng)
        kinds = [type(l) for l in net.layers]
        assert kinds == [
            PhaseBlock, MaxPool2D, PhaseBlock, MaxPool2D, PhaseBlock,
            GlobalAvgPool2D, Dense,
        ]
        assert net.output_shape() == (2,)

    def test_channel_widths_applied(self, rng):
        genome = random_genome(rng)
        net = decode_genome(genome, DecoderConfig((1, 16, 16), 3, (4, 8, 12)), rng=rng)
        phases = [l for l in net.layers if isinstance(l, PhaseBlock)]
        assert [p.out_channels for p in phases] == [4, 8, 12]
        assert net.layers[-1].out_features == 3

    def test_phase_channel_mismatch_rejected(self, rng):
        genome = random_genome(rng, n_phases=3)
        with pytest.raises(ValueError, match="channel widths"):
            decode_genome(genome, DecoderConfig((1, 16, 16), 2, (4, 8)), rng=rng)

    def test_too_small_input_rejected(self, rng):
        genome = random_genome(rng, n_phases=3)
        with pytest.raises(ValueError, match="too small"):
            decode_genome(genome, DecoderConfig((1, 2, 2), 2, (4, 8, 12)), rng=rng)

    def test_forward_backward_runs(self, rng):
        genome = random_genome(rng)
        net = decode_genome(genome, DecoderConfig((1, 8, 8), 2, (2, 3, 4)), rng=rng)
        x = rng.normal(size=(4, 1, 8, 8))
        y = rng.integers(0, 2, 4)
        logits = net.forward(x, training=True)
        _, grad = SoftmaxCrossEntropy()(logits, y)
        grad_in = net.backward(grad)
        assert grad_in.shape == x.shape

    def test_deterministic_weights_per_rng(self, rng):
        genome = random_genome(rng)
        net1 = decode_genome(genome, rng=np.random.default_rng(3))
        net2 = decode_genome(genome, rng=np.random.default_rng(3))
        for (n1, p1), (n2, p2) in zip(net1.parameters(), net2.parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.value, p2.value)

    def test_checkpoint_round_trip_with_phase_blocks(self, rng, tmp_path):
        genome = random_genome(rng)
        net = decode_genome(genome, DecoderConfig((1, 8, 8), 2, (2, 3, 4)), rng=rng)
        x = rng.normal(size=(3, 1, 8, 8))
        net.forward(x, training=True)  # populate batch-norm state
        save_checkpoint(net, tmp_path)
        reloaded = load_checkpoint(tmp_path)
        np.testing.assert_allclose(reloaded.predict(x), net.predict(x), atol=1e-12)

    def test_flops_vary_with_connectivity(self, rng):
        sparse = Genome.from_bits((0,) * 21, (4, 4, 4))
        dense = Genome.from_bits((1,) * 21, (4, 4, 4))
        config = DecoderConfig((1, 16, 16), 2, (4, 8, 12))
        flops_sparse = decode_genome(sparse, config, rng=rng).flops()
        flops_dense = decode_genome(dense, config, rng=rng).flops()
        # node count is fixed, so conv cost is equal; dense genome adds
        # elementwise-sum cost for multi-input nodes
        assert flops_dense > flops_sparse

    def test_default_name_includes_key(self, rng):
        genome = random_genome(rng)
        net = decode_genome(genome, rng=rng)
        assert genome.key() in net.name
