"""The tensor abstract interpreter and its rule packs (SHAPE/ALIAS/EFF)."""

import textwrap

from repro.tooling.context import ModuleContext, ProjectContext
from repro.tooling.linter import Linter
from repro.tooling.rules import all_rules, rule_ids
from repro.tooling.tensorflow import (
    Poly,
    declared_mutations,
    module_facts,
    provably_ne,
)


def lint(sources: dict) -> list:
    return Linter(all_rules()).lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()}
    ).diagnostics


def facts_of(source: str, path: str = "repro/nn/fixture.py"):
    project = ProjectContext()
    module = ModuleContext.parse(textwrap.dedent(source), path)
    project.add(module)
    return module, module_facts(module)


def ids(diags) -> set:
    return {d.rule_id for d in diags}


# -- shape polynomials ---------------------------------------------------------


def test_poly_arithmetic_and_provability():
    n = Poly.sym("n")
    assert ((n + Poly.of(1)) - n).as_const == 1
    assert (n * n).render() == "n*n"
    # n+1 != n is provable; n != m is not (either could equal the other)
    assert provably_ne(n + Poly.of(1), n)
    assert not provably_ne(n, Poly.sym("m"))
    # positive-dims assumption: n+m > n always, so inequality is provable
    assert provably_ne(n, n + Poly.sym("m"))


def test_identical_derived_expressions_compare_equal():
    # h//2 collapses to a derived symbol named from its operands, so two
    # separate statements computing it must agree (no false positives)
    _, mf = facts_of("""
        import numpy as np
        def halves(x):
            n, c, h, w = x.shape
            a = np.zeros((n, h // 2), dtype="float32")
            b = np.zeros((n, h // 2), dtype="float32")
            np.add(a, 1.0, out=b)
            return b
    """)
    (fn,) = mf.functions
    assert not fn.shape_findings


# -- interpreter facts ---------------------------------------------------------


def test_reshape_element_count_mismatch_is_found():
    _, mf = facts_of("""
        import numpy as np
        def forward(x):
            n, c, h, w = x.shape
            return x.reshape(n + n, c, h, w)
    """)
    (fn,) = mf.functions
    assert fn.shape_findings, "doubling the batch extent must be provable"


def test_unprovable_reshape_stays_silent():
    # dropping w is only wrong when w != 1 — not provable, so no finding
    _, mf = facts_of("""
        import numpy as np
        def forward(x):
            n, c, h, w = x.shape
            return x.reshape(n, c * h)
    """)
    (fn,) = mf.functions
    assert not fn.shape_findings


def test_legal_symbolic_reshape_stays_silent():
    _, mf = facts_of("""
        import numpy as np
        def forward(x):
            n, c, h, w = x.shape
            flat = x.reshape(n, c * h * w)
            return flat.reshape(n, c, h, w)
    """)
    (fn,) = mf.functions
    assert not fn.shape_findings
    assert not fn.alias_findings


def test_matmul_out_aliasing_operand_is_found():
    _, mf = facts_of("""
        import numpy as np
        def forward(w, cols):
            np.matmul(w, cols, out=cols)
            return cols
    """)
    (fn,) = mf.functions
    assert fn.alias_findings


def test_elementwise_out_aliasing_is_fine():
    _, mf = facts_of("""
        import numpy as np
        def forward(x):
            np.multiply(x, 2.0, out=x)
            np.add(x, 1.0, out=x)
            return x
    """)
    (fn,) = mf.functions
    assert not fn.alias_findings


def test_copy_breaks_aliasing():
    _, mf = facts_of("""
        import numpy as np
        def forward(w, cols):
            safe = cols.copy()
            np.matmul(w, cols, out=safe)
            return safe
    """)
    (fn,) = mf.functions
    assert not fn.alias_findings


def test_mixed_float_widths_are_a_dtype_finding():
    _, mf = facts_of("""
        import numpy as np
        def forward(x):
            a = np.zeros((4,), dtype="float32")
            b = np.zeros((4,), dtype="float64")
            return a + b
    """)
    (fn,) = mf.functions
    assert fn.dtype_findings


def test_effect_summary_names_mutated_parameters():
    _, mf = facts_of("""
        def scale(grads, factor):
            grads *= factor
            return grads
    """)
    (fn,) = mf.functions
    assert "grads" in fn.effect_summary()


def test_declared_mutations_parse_name_and_reason():
    module, mf = facts_of("""
        def clip(network, bound):
            # a4nn: mutates(network) -- clipping rescales grads in place
            network.total = bound
    """)
    declared = declared_mutations(module, mf.functions[0].node)
    assert declared == {"network": "clipping rescales grads in place"}


def test_arena_buffer_escape_is_recorded():
    _, mf = facts_of("""
        class Layer:
            def helper(self):
                buf = self.arena.buffer("0", "cols", (4, 4), "float32")
                self.keep = buf
                return buf
    """)
    (fn,) = mf.functions
    kinds = {kind for _n, kind, _r, _d in fn.escapes}
    assert "stored-on-self" in kinds
    assert "returned" in kinds


# -- rule packs (integration through the linter) -------------------------------

SEEDED_ALIAS_BUG = """
    import numpy as np

    class BadConv:
        def forward(self, x, training=False):
            cols = self.arena.buffer("0", "cols", (8, 8), "float32")
            w = self.weight
            np.matmul(w, cols, out=cols)
            return cols
"""


def test_seeded_aliasing_bug_is_flagged_by_alias001():
    diags = lint({"repro/nn/fixture.py": SEEDED_ALIAS_BUG})
    assert any(d.rule_id == "ALIAS001" for d in diags)
    (hit,) = [d for d in diags if d.rule_id == "ALIAS001"]
    assert "out=" in hit.message or "alias" in hit.message.lower()


def test_shape001_flags_provable_reshape_mismatch():
    diags = lint({"repro/nn/fixture.py": """
        import numpy as np
        def forward(x):
            n, c, h, w = x.shape
            return x.reshape(n + n, c, h, w)
    """})
    assert "SHAPE001" in ids(diags)


def test_shape002_respects_the_dtype_policy_seam():
    mixing = """
        import numpy as np
        def widen(x):
            a = np.zeros((4,), dtype="float32")
            b = np.zeros((4,), dtype="float64")
            return a + b
    """
    # outside the policy file: flagged
    assert "SHAPE002" in ids(lint({"repro/nn/fixture.py": mixing}))
    # inside nn/dtype.py (the policy seam): exempt
    assert "SHAPE002" not in ids(lint({"repro/nn/dtype.py": mixing}))


def test_alias002_flags_public_escape_but_not_forward_return():
    diags = lint({"repro/nn/fixture.py": """
        import numpy as np
        class L:
            def forward(self, x, training=False):
                out = self.arena.buffer("0", "out", (4, 4), "float32")
                return out
            def stash(self):
                buf = self.arena.buffer("0", "tmp", (4, 4), "float32")
                self.keep = buf
    """})
    alias2 = [d for d in diags if d.rule_id == "ALIAS002"]
    assert alias2, "public stash must be flagged"
    assert all("stash" in d.message or d.line >= 7 for d in alias2), (
        "the forward-contract return must not be flagged"
    )


def test_eff001_flags_undeclared_parameter_mutation():
    diags = lint({"repro/nn/fixture.py": """
        import numpy as np
        def rescale(grads, scale):
            grads *= scale
    """})
    (hit,) = [d for d in diags if d.rule_id == "EFF001"]
    assert "mutates(" in hit.message  # suggests the contract comment


def test_eff001_honours_the_mutates_contract():
    diags = lint({"repro/nn/fixture.py": """
        import numpy as np
        def rescale(grads, scale):
            # a4nn: mutates(grads) -- rescaling is this function's purpose
            grads *= scale
    """})
    assert "EFF001" not in ids(diags)


def test_eff001_exempts_out_parameters():
    diags = lint({"repro/nn/fixture.py": """
        import numpy as np
        def write(out, x):
            np.add(x, 1.0, out=out)
    """})
    assert "EFF001" not in ids(diags)


def test_packs_are_scoped_to_the_nn_stack():
    diags = lint({"repro/analysis/fixture.py": SEEDED_ALIAS_BUG})
    assert "ALIAS001" not in ids(diags)


def test_noqa_silences_tensor_pack_findings():
    diags = lint({"repro/nn/fixture.py": """
        import numpy as np
        def rescale(grads, scale):
            grads *= scale  # a4nn: noqa(EFF001) -- fixture exercises suppression
    """})
    assert "EFF001" not in ids(diags)


def test_new_rule_ids_are_registered_and_documented():
    registered = set(rule_ids())
    for rule_id in ("SHAPE001", "SHAPE002", "ALIAS001", "ALIAS002", "EFF001"):
        assert rule_id in registered
    by_id = {r.rule_id: r for r in all_rules()}
    assert by_id["SHAPE001"].scope == "project"
    assert by_id["ALIAS001"].category == "aliasing"
