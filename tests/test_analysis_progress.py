"""Unit tests for search-progress analytics (synthetic records)."""

import numpy as np
import pytest

from repro.analysis import best_so_far, search_progress
from repro.lineage.records import ModelRecord
from repro.nas import random_genome


def record(model_id, generation, fitness, rng):
    return ModelRecord(
        model_id=model_id,
        generation=generation,
        genome=random_genome(rng).to_dict(),
        fitness=fitness,
        flops=100,
        epochs_trained=10,
        max_epochs=25,
    )


class TestBestSoFar:
    def test_running_maximum(self, rng):
        fitnesses = [50.0, 60.0, 55.0, 70.0, 65.0]
        records = [record(i, 0, f, rng) for i, f in enumerate(fitnesses)]
        np.testing.assert_array_equal(
            best_so_far(records), [50.0, 60.0, 60.0, 70.0, 70.0]
        )

    def test_ordering_by_model_id_not_input_order(self, rng):
        records = [record(1, 0, 90.0, rng), record(0, 0, 50.0, rng)]
        np.testing.assert_array_equal(best_so_far(records), [50.0, 90.0])

    def test_skips_unevaluated(self, rng):
        records = [record(0, 0, 50.0, rng), record(1, 0, None, rng)]
        assert len(best_so_far(records)) == 1


class TestSearchProgress:
    def test_efficiency_metrics(self, rng):
        # improvement concentrated early: 95% threshold reached quickly
        fitnesses = [50.0, 90.0, 91.0, 91.0, 91.0, 91.5]
        records = [record(i, i // 3, f, rng) for i, f in enumerate(fitnesses)]
        progress = search_progress(records)
        assert progress.final_best == 91.5
        # 95% of 41.5-point improvement = 89.4 -> reached at evaluation 2
        assert progress.evaluations_to_95_percent == 2
        assert progress.stagnant_tail == 0  # last step improved
        assert len(progress.generation_best) == 2
        assert progress.generation_best[0] == 91.0

    def test_stagnant_tail_counts_flat_end(self, rng):
        fitnesses = [50.0, 90.0, 90.0, 90.0]
        records = [record(i, 0, f, rng) for i, f in enumerate(fitnesses)]
        progress = search_progress(records)
        assert progress.stagnant_tail == 2

    def test_flat_run_fully_stagnant(self, rng):
        records = [record(i, 0, 75.0, rng) for i in range(4)]
        progress = search_progress(records)
        assert progress.stagnant_tail == 3
        assert progress.evaluations_to_95_percent == 1
