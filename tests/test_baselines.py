"""Tests for the XPSI baseline and truncated-training utilities."""

import numpy as np
import pytest

from repro.baselines import (
    Autoencoder,
    KNNClassifier,
    XPSIConfig,
    run_truncated_training,
    run_xpsi,
    truncation_waste,
)
from repro.core.engine import PredictionEngine
from repro.core.plugin import run_training_loop
from repro.nas.surrogate import LearningCurveModel

from tests.conftest import make_concave_curve


class TestKNN:
    def test_memorizes_training_points(self, rng):
        x = rng.normal(size=(20, 4))
        y = rng.integers(0, 2, 20)
        knn = KNNClassifier(k=1).fit(x, y)
        np.testing.assert_array_equal(knn.predict(x), y)

    def test_separable_blobs(self, rng):
        x0 = rng.normal(size=(30, 3))
        x1 = rng.normal(size=(30, 3)) + 8.0
        x = np.vstack([x0, x1])
        y = np.array([0] * 30 + [1] * 30)
        knn = KNNClassifier(k=5).fit(x, y)
        queries = np.vstack([rng.normal(size=(5, 3)), rng.normal(size=(5, 3)) + 8.0])
        expected = np.array([0] * 5 + [1] * 5)
        np.testing.assert_array_equal(knn.predict(queries), expected)
        assert knn.score_percent(queries, expected) == 100.0

    def test_chunked_matches_unchunked(self, rng):
        x = rng.normal(size=(50, 6))
        y = rng.integers(0, 3, 50)
        q = rng.normal(size=(40, 6))
        knn = KNNClassifier(k=3).fit(x, y)
        np.testing.assert_array_equal(knn.predict(q, chunk=7), knn.predict(q, chunk=1000))

    def test_predict_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            KNNClassifier().predict(rng.normal(size=(3, 2)))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            KNNClassifier(k=5).fit(rng.normal(size=(3, 2)), np.array([0, 1, 0]))
        knn = KNNClassifier(k=1).fit(rng.normal(size=(5, 2)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            knn.predict(rng.normal(size=(2, 3)))


class TestAutoencoder:
    def test_reconstruction_improves_with_training(self, rng, tiny_dataset):
        ae = Autoencoder(input_dim=16 * 16, hidden_dim=32, latent_dim=8, rng=rng)
        first = ae.train_epoch(tiny_dataset.x_train)
        for _ in range(8):
            last = ae.train_epoch(tiny_dataset.x_train)
        assert last < first
        assert len(ae.loss_history) == 9

    def test_encode_shape(self, rng, tiny_dataset):
        ae = Autoencoder(input_dim=16 * 16, hidden_dim=32, latent_dim=8, rng=rng)
        features = ae.encode(tiny_dataset.x_test)
        assert features.shape == (len(tiny_dataset.x_test), 8)

    def test_reconstruct_in_unit_range(self, rng, tiny_dataset):
        ae = Autoencoder(input_dim=16 * 16, hidden_dim=32, latent_dim=8, rng=rng)
        ae.fit(tiny_dataset.x_train, epochs=2)
        recon = ae.reconstruct(tiny_dataset.x_test)
        assert np.all((recon >= 0) & (recon <= 1))

    def test_validation(self):
        with pytest.raises(Exception):
            Autoencoder(input_dim=0)


class TestXPSI:
    def test_pipeline_on_tiny_data(self, tiny_dataset):
        config = XPSIConfig(latent_dim=16, hidden_dim=64, autoencoder_epochs=10)
        result = run_xpsi(tiny_dataset, config)
        assert 0.0 <= result.accuracy <= 100.0
        assert result.accuracy > 50.0  # better than chance on clean data
        assert result.measured_seconds > 0
        assert result.intensity == "high"

    def test_simulated_hours_fixed_across_intensities(self, tiny_dataset, tiny_noisy_dataset):
        config = XPSIConfig(latent_dim=8, hidden_dim=32, autoencoder_epochs=5)
        high = run_xpsi(tiny_dataset, config)
        low = run_xpsi(tiny_noisy_dataset, config)
        assert high.simulated_hours == pytest.approx(low.simulated_hours)

    def test_default_config_maps_to_paper_hours(self):
        from repro.baselines.xpsi import _simulated_hours
        from repro.xfel import DatasetConfig, generate_dataset

        dataset = generate_dataset(DatasetConfig(images_per_class=3, image_size=32))
        assert _simulated_hours(XPSIConfig(), dataset) == pytest.approx(15.45, abs=0.01)

    def test_deterministic_per_seed(self, tiny_dataset):
        config = XPSIConfig(latent_dim=8, hidden_dim=32, autoencoder_epochs=3, seed=9)
        r1 = run_xpsi(tiny_dataset, config)
        r2 = run_xpsi(tiny_dataset, config)
        assert r1.accuracy == r2.accuracy


class TestTruncatedTraining:
    def test_runs_exact_budget(self):
        result = run_truncated_training(LearningCurveModel(make_concave_curve(25)), 25)
        assert result.epochs_trained == 25
        assert not result.terminated_early

    def test_waste_computation(self):
        curve = make_concave_curve(25, rate=0.5)
        baseline = run_truncated_training(LearningCurveModel(curve), 25)
        engine_run = run_training_loop(LearningCurveModel(curve), PredictionEngine(), 25)
        waste = truncation_waste(baseline, engine_run)
        assert waste.baseline_epochs == 25
        assert waste.epochs_wasted == 25 - engine_run.epochs_trained
        assert waste.fraction_wasted == pytest.approx(waste.epochs_wasted / 25)
