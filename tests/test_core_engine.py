"""Tests for the prediction engine (paper §2.1, Table 1)."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, PredictionEngine
from repro.utils.validation import ValidationError

from tests.conftest import make_concave_curve


class TestEngineConfig:
    def test_paper_defaults(self):
        config = EngineConfig()
        assert config.function == "exp3"
        assert config.c_min == 3
        assert config.e_pred == 25
        assert config.n_predictions == 3
        assert config.tolerance == 0.5

    def test_to_dict_round_trip_fields(self):
        d = EngineConfig().to_dict()
        assert d["function"] == "exp3"
        assert d["fitness_bounds"] == [0.0, 100.0]

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(TypeError):
            PredictionEngine(EngineConfig(), c_min=4)

    def test_c_min_below_param_count_rejected(self):
        with pytest.raises(ValidationError, match="underdetermined"):
            PredictionEngine(EngineConfig(function="weibull", c_min=3))  # 4 params

    def test_invalid_e_pred_rejected(self):
        with pytest.raises(ValidationError):
            PredictionEngine(EngineConfig(e_pred=0))


class TestPredictor:
    def test_no_prediction_before_c_min(self):
        engine = PredictionEngine()
        assert engine.predictor(1, [50.0]) is None
        assert engine.predictor(2, [50.0, 60.0]) is None

    def test_prediction_from_c_min_onwards(self):
        engine = PredictionEngine()
        curve = make_concave_curve(10)
        prediction = engine.predictor(3, list(curve[:3]))
        assert prediction is not None
        assert np.isfinite(prediction)

    def test_prediction_converges_to_asymptote(self):
        engine = PredictionEngine()
        curve = make_concave_curve(20, asymptote=95.0)
        prediction = engine.predictor(20, list(curve))
        # F(25) for this curve is ~95.0
        assert prediction == pytest.approx(95.0, abs=0.5)

    def test_epoch_history_mismatch_raises(self):
        engine = PredictionEngine()
        with pytest.raises(ValueError, match="disagrees"):
            engine.predictor(5, [50.0, 60.0, 65.0])

    def test_describe_includes_formula(self):
        snapshot = PredictionEngine().describe()
        assert snapshot["formula"] == "a - b**(c - x)"
        assert snapshot["e_pred"] == 25


class TestSession:
    def test_converges_on_clean_curve(self):
        session = PredictionEngine().session()
        curve = make_concave_curve(25, rate=0.4)
        for accuracy in curve:
            session.observe(accuracy)
            if session.converged:
                break
        assert session.converged
        assert session.epoch < 25  # early termination happened
        assert session.final_fitness == pytest.approx(95.0, abs=1.0)

    def test_never_converges_on_wild_curve(self):
        rng = np.random.default_rng(0)
        session = PredictionEngine().session()
        for _ in range(25):
            session.observe(float(rng.uniform(20, 90)))
        assert not session.converged
        assert session.final_fitness is None

    def test_observe_after_convergence_raises(self):
        session = PredictionEngine().session()
        for accuracy in make_concave_curve(25, rate=0.5):
            if session.converged:
                break
            session.observe(accuracy)
        assert session.converged
        with pytest.raises(RuntimeError, match="already converged"):
            session.observe(99.0)

    def test_histories_grow_consistently(self):
        session = PredictionEngine().session()
        curve = make_concave_curve(6)
        for accuracy in curve:
            if session.converged:
                break
            session.observe(accuracy)
        assert session.epoch == len(session.fitness_history)
        # predictions start at epoch c_min = 3
        assert len(session.prediction_history) == session.epoch - 2


class TestAlternativeFunctions:
    @pytest.mark.parametrize("name,c_min", [("pow3", 3), ("ilog2", 2), ("janoschek", 4)])
    def test_engine_works_with_other_families(self, name, c_min):
        engine = PredictionEngine(EngineConfig(function=name, c_min=c_min))
        curve = make_concave_curve(25, rate=0.4)
        session = engine.session()
        for accuracy in curve:
            session.observe(accuracy)
            if session.converged:
                break
        # may or may not converge, but must never produce invalid state
        assert len(session.fitness_history) <= 25
        for p in session.prediction_history:
            assert np.isfinite(p)
