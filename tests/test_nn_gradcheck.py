"""Numerical gradient checks for every trainable layer.

For each layer we compare analytic backward() gradients — both with
respect to the input and to every parameter — against central finite
differences of a scalar loss ``sum(forward(x) * w)`` with fixed random
weights ``w``.
"""

import numpy as np
import pytest

from repro.nas.decoder import PhaseBlock
from repro.nn.dtype import SUPPORTED_DTYPES, resolve_dtype
from repro.nn.layers.conv import col2im, im2col
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)

EPS = 1e-6
TOL = 1e-5

# Central-difference step and pass tolerance per compute dtype.  In
# float32 the forward pass carries ~1e-7 relative rounding noise, so the
# step must be large enough for the loss difference to rise above that
# noise, and the tolerance correspondingly looser.
DTYPE_GRADCHECK = {
    "float64": {"eps": EPS, "tol": TOL},
    "float32": {"eps": 1e-2, "tol": 3e-2},
}


def numeric_vs_analytic(layer, x, rng, eps=EPS):
    """Return (max input-grad error, {param: max error})."""
    out = layer.forward(x, training=True)
    w = rng.normal(size=out.shape)

    def loss_from(x_in):
        return float(np.sum(layer.forward(x_in, training=True) * w))

    # analytic gradients (recompute forward to leave caches fresh)
    layer.zero_grad()
    layer.forward(x, training=True)
    grad_x = layer.backward(w.astype(x.dtype) if x.dtype != w.dtype else w)

    # numeric input gradient
    num_grad_x = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    num_flat = num_grad_x.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = loss_from(x)
        flat[i] = orig - eps
        down = loss_from(x)
        flat[i] = orig
        num_flat[i] = (up - down) / (2 * eps)
    err_x = float(np.max(np.abs(grad_x - num_grad_x)))

    # numeric parameter gradients
    param_errors = {}
    for name, param in layer.parameters():
        analytic = param.grad.copy()
        numeric = np.zeros_like(param.value, dtype=np.float64)
        pflat = param.value.ravel()
        nflat = numeric.ravel()
        for i in range(pflat.size):
            orig = pflat[i]
            pflat[i] = orig + eps
            up = loss_from(x)
            pflat[i] = orig - eps
            down = loss_from(x)
            pflat[i] = orig
            nflat[i] = (up - down) / (2 * eps)
        param_errors[name] = float(np.max(np.abs(analytic - numeric)))
    return err_x, param_errors


def assert_gradients_match(layer, x, rng, eps=EPS, tol=TOL):
    err_x, param_errors = numeric_vs_analytic(layer, x, rng, eps=eps)
    assert err_x < tol, f"input gradient error {err_x}"
    for name, err in param_errors.items():
        assert err < tol, f"parameter {name} gradient error {err}"


@pytest.fixture
def grad_rng():
    return np.random.default_rng(99)


class TestDenseGrad:
    def test_dense(self, grad_rng):
        layer = Dense(5, 4, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(3, 5)), grad_rng)

    def test_dense_no_bias(self, grad_rng):
        layer = Dense(4, 3, use_bias=False, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 4)), grad_rng)


class TestConvGrad:
    def test_conv_same_padding(self, grad_rng):
        layer = Conv2D(2, 3, kernel_size=3, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 5, 5)), grad_rng)

    def test_conv_no_padding(self, grad_rng):
        layer = Conv2D(1, 2, kernel_size=3, padding=0, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 1, 6, 6)), grad_rng)

    def test_conv_stride_2(self, grad_rng):
        layer = Conv2D(2, 2, kernel_size=3, stride=2, padding=1, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 6, 6)), grad_rng)

    def test_conv_1x1(self, grad_rng):
        layer = Conv2D(3, 2, kernel_size=1, padding=0, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 3, 4, 4)), grad_rng)


class TestPoolingGrad:
    def test_maxpool(self, grad_rng):
        layer = MaxPool2D(2)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 6, 6)), grad_rng)

    def test_maxpool_overlapping(self, grad_rng):
        layer = MaxPool2D(3, stride=2)
        # well-separated values avoid argmax ties at finite-difference scale
        x = grad_rng.permutation(np.arange(2 * 1 * 7 * 7)).reshape(2, 1, 7, 7) * 0.37
        assert_gradients_match(layer, x.astype(float), grad_rng)

    def test_avgpool(self, grad_rng):
        layer = AvgPool2D(2)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 3, 4, 4)), grad_rng)

    def test_global_avgpool(self, grad_rng):
        layer = GlobalAvgPool2D()
        assert_gradients_match(layer, grad_rng.normal(size=(3, 4, 5, 5)), grad_rng)


class TestActivationGrad:
    def test_relu(self, grad_rng):
        # shift away from 0 to avoid kink non-differentiability
        x = grad_rng.normal(size=(3, 7))
        x[np.abs(x) < 0.01] += 0.05
        assert_gradients_match(ReLU(), x, grad_rng)

    def test_leaky_relu(self, grad_rng):
        x = grad_rng.normal(size=(3, 7))
        x[np.abs(x) < 0.01] += 0.05
        assert_gradients_match(LeakyReLU(0.1), x, grad_rng)

    def test_sigmoid(self, grad_rng):
        assert_gradients_match(Sigmoid(), grad_rng.normal(size=(3, 6)), grad_rng)

    def test_tanh(self, grad_rng):
        assert_gradients_match(Tanh(), grad_rng.normal(size=(3, 6)), grad_rng)


class TestNormGrad:
    def test_batchnorm2d(self, grad_rng):
        layer = BatchNorm2D(3)
        assert_gradients_match(layer, grad_rng.normal(size=(4, 3, 3, 3)), grad_rng)

    def test_batchnorm1d(self, grad_rng):
        layer = BatchNorm1D(5)
        assert_gradients_match(layer, grad_rng.normal(size=(6, 5)), grad_rng)


class TestStructuralGrad:
    def test_flatten(self, grad_rng):
        assert_gradients_match(Flatten(), grad_rng.normal(size=(2, 3, 4, 4)), grad_rng)

    def test_phase_block_dense_connectivity(self, grad_rng):
        # all connections + skip: exercises multi-predecessor sums
        layer = PhaseBlock(3, (1, 1, 1, 1), 2, 3, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 4, 4)), grad_rng)

    def test_phase_block_sparse_connectivity(self, grad_rng):
        # no connections, no skip: every node reads the input directly
        layer = PhaseBlock(3, (0, 0, 0, 0), 2, 2, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 4, 4)), grad_rng)


class TestDtypeGrad:
    """Gradcheck under both compute dtypes with dtype-aware tolerances."""

    @pytest.mark.parametrize("label", sorted(DTYPE_GRADCHECK))
    def test_dense(self, grad_rng, label):
        dtype = resolve_dtype(label)
        layer = Dense(5, 4, rng=grad_rng, dtype=dtype)
        x = grad_rng.normal(size=(3, 5)).astype(dtype)
        assert_gradients_match(layer, x, grad_rng, **DTYPE_GRADCHECK[label])

    @pytest.mark.parametrize("label", sorted(DTYPE_GRADCHECK))
    def test_conv(self, grad_rng, label):
        dtype = resolve_dtype(label)
        layer = Conv2D(2, 3, kernel_size=3, rng=grad_rng, dtype=dtype)
        x = grad_rng.normal(size=(2, 2, 5, 5)).astype(dtype)
        assert_gradients_match(layer, x, grad_rng, **DTYPE_GRADCHECK[label])

    @pytest.mark.parametrize("label", sorted(DTYPE_GRADCHECK))
    def test_batchnorm2d(self, grad_rng, label):
        dtype = resolve_dtype(label)
        layer = BatchNorm2D(3, dtype=dtype)
        x = grad_rng.normal(size=(4, 3, 3, 3)).astype(dtype)
        assert_gradients_match(layer, x, grad_rng, **DTYPE_GRADCHECK[label])

    def test_tolerance_table_covers_all_supported_dtypes(self):
        assert set(DTYPE_GRADCHECK) == set(SUPPORTED_DTYPES)


class TestIm2ColAdjoint:
    """col2im is the exact linear adjoint of im2col.

    For every input x and column-space cotangent c the inner-product
    identity ``<im2col(x), c> == <x, col2im(c)>`` must hold — this is
    precisely the property the conv backward pass relies on when it
    routes ``dL/dcols`` back to ``dL/dx``.
    """

    CASES = [
        # (input shape, kh, kw, stride)
        ((2, 3, 6, 6), 3, 3, 1),
        ((2, 3, 7, 7), 3, 3, 2),
        ((1, 2, 5, 5), 1, 1, 1),
        ((2, 1, 8, 8), 2, 2, 2),
        ((1, 4, 9, 9), 5, 5, 2),
        ((3, 2, 6, 8), 3, 2, 1),  # rectangular kernel, rectangular image
        ((1, 1, 10, 10), 3, 3, 3),  # stride leaves uncovered border pixels
    ]

    @pytest.mark.parametrize("label", sorted(SUPPORTED_DTYPES))
    @pytest.mark.parametrize("shape,kh,kw,stride", CASES)
    def test_inner_product_identity(self, grad_rng, shape, kh, kw, stride, label):
        dtype = resolve_dtype(label)
        x = grad_rng.normal(size=shape).astype(dtype)
        cols = im2col(x, kh, kw, stride)
        c = grad_rng.normal(size=cols.shape).astype(dtype)
        back = col2im(c, x.shape, kh, kw, stride)
        assert back.dtype == dtype
        lhs = float(np.sum(cols.astype(np.float64) * c.astype(np.float64)))
        rhs = float(np.sum(x.astype(np.float64) * back.astype(np.float64)))
        rel = 1e-5 if label == "float32" else 1e-12
        assert lhs == pytest.approx(rhs, rel=rel, abs=1e-9)

    def test_col2im_scatter_adds_overlaps(self, grad_rng):
        # overlapping stride-1 windows: interior pixels are touched kh*kw
        # times, so col2im of all-ones counts each pixel's window multiplicity
        x_shape = (1, 1, 5, 5)
        cols = np.ones((1, 9, 9))  # oh*ow = 3*3 for k=3, stride=1
        back = col2im(cols, x_shape, 3, 3, 1)
        assert back[0, 0, 2, 2] == 9.0  # center sits in all 9 windows
        assert back[0, 0, 0, 0] == 1.0  # corner sits in exactly one
