"""Numerical gradient checks for every trainable layer.

For each layer we compare analytic backward() gradients — both with
respect to the input and to every parameter — against central finite
differences of a scalar loss ``sum(forward(x) * w)`` with fixed random
weights ``w``.
"""

import numpy as np
import pytest

from repro.nas.decoder import PhaseBlock
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)

EPS = 1e-6
TOL = 1e-5


def numeric_vs_analytic(layer, x, rng):
    """Return (max input-grad error, {param: max error})."""
    out = layer.forward(x, training=True)
    w = rng.normal(size=out.shape)

    def loss_from(x_in):
        return float(np.sum(layer.forward(x_in, training=True) * w))

    # analytic gradients (recompute forward to leave caches fresh)
    layer.zero_grad()
    layer.forward(x, training=True)
    grad_x = layer.backward(w)

    # numeric input gradient
    num_grad_x = np.zeros_like(x)
    flat = x.ravel()
    num_flat = num_grad_x.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        up = loss_from(x)
        flat[i] = orig - EPS
        down = loss_from(x)
        flat[i] = orig
        num_flat[i] = (up - down) / (2 * EPS)
    err_x = float(np.max(np.abs(grad_x - num_grad_x)))

    # numeric parameter gradients
    param_errors = {}
    for name, param in layer.parameters():
        analytic = param.grad.copy()
        numeric = np.zeros_like(param.value)
        pflat = param.value.ravel()
        nflat = numeric.ravel()
        for i in range(pflat.size):
            orig = pflat[i]
            pflat[i] = orig + EPS
            up = loss_from(x)
            pflat[i] = orig - EPS
            down = loss_from(x)
            pflat[i] = orig
            nflat[i] = (up - down) / (2 * EPS)
        param_errors[name] = float(np.max(np.abs(analytic - numeric)))
    return err_x, param_errors


def assert_gradients_match(layer, x, rng):
    err_x, param_errors = numeric_vs_analytic(layer, x, rng)
    assert err_x < TOL, f"input gradient error {err_x}"
    for name, err in param_errors.items():
        assert err < TOL, f"parameter {name} gradient error {err}"


@pytest.fixture
def grad_rng():
    return np.random.default_rng(99)


class TestDenseGrad:
    def test_dense(self, grad_rng):
        layer = Dense(5, 4, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(3, 5)), grad_rng)

    def test_dense_no_bias(self, grad_rng):
        layer = Dense(4, 3, use_bias=False, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 4)), grad_rng)


class TestConvGrad:
    def test_conv_same_padding(self, grad_rng):
        layer = Conv2D(2, 3, kernel_size=3, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 5, 5)), grad_rng)

    def test_conv_no_padding(self, grad_rng):
        layer = Conv2D(1, 2, kernel_size=3, padding=0, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 1, 6, 6)), grad_rng)

    def test_conv_stride_2(self, grad_rng):
        layer = Conv2D(2, 2, kernel_size=3, stride=2, padding=1, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 6, 6)), grad_rng)

    def test_conv_1x1(self, grad_rng):
        layer = Conv2D(3, 2, kernel_size=1, padding=0, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 3, 4, 4)), grad_rng)


class TestPoolingGrad:
    def test_maxpool(self, grad_rng):
        layer = MaxPool2D(2)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 6, 6)), grad_rng)

    def test_maxpool_overlapping(self, grad_rng):
        layer = MaxPool2D(3, stride=2)
        # well-separated values avoid argmax ties at finite-difference scale
        x = grad_rng.permutation(np.arange(2 * 1 * 7 * 7)).reshape(2, 1, 7, 7) * 0.37
        assert_gradients_match(layer, x.astype(float), grad_rng)

    def test_avgpool(self, grad_rng):
        layer = AvgPool2D(2)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 3, 4, 4)), grad_rng)

    def test_global_avgpool(self, grad_rng):
        layer = GlobalAvgPool2D()
        assert_gradients_match(layer, grad_rng.normal(size=(3, 4, 5, 5)), grad_rng)


class TestActivationGrad:
    def test_relu(self, grad_rng):
        # shift away from 0 to avoid kink non-differentiability
        x = grad_rng.normal(size=(3, 7))
        x[np.abs(x) < 0.01] += 0.05
        assert_gradients_match(ReLU(), x, grad_rng)

    def test_leaky_relu(self, grad_rng):
        x = grad_rng.normal(size=(3, 7))
        x[np.abs(x) < 0.01] += 0.05
        assert_gradients_match(LeakyReLU(0.1), x, grad_rng)

    def test_sigmoid(self, grad_rng):
        assert_gradients_match(Sigmoid(), grad_rng.normal(size=(3, 6)), grad_rng)

    def test_tanh(self, grad_rng):
        assert_gradients_match(Tanh(), grad_rng.normal(size=(3, 6)), grad_rng)


class TestNormGrad:
    def test_batchnorm2d(self, grad_rng):
        layer = BatchNorm2D(3)
        assert_gradients_match(layer, grad_rng.normal(size=(4, 3, 3, 3)), grad_rng)

    def test_batchnorm1d(self, grad_rng):
        layer = BatchNorm1D(5)
        assert_gradients_match(layer, grad_rng.normal(size=(6, 5)), grad_rng)


class TestStructuralGrad:
    def test_flatten(self, grad_rng):
        assert_gradients_match(Flatten(), grad_rng.normal(size=(2, 3, 4, 4)), grad_rng)

    def test_phase_block_dense_connectivity(self, grad_rng):
        # all connections + skip: exercises multi-predecessor sums
        layer = PhaseBlock(3, (1, 1, 1, 1), 2, 3, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 4, 4)), grad_rng)

    def test_phase_block_sparse_connectivity(self, grad_rng):
        # no connections, no skip: every node reads the input directly
        layer = PhaseBlock(3, (0, 0, 0, 0), 2, 2, rng=grad_rng)
        assert_gradients_match(layer, grad_rng.normal(size=(2, 2, 4, 4)), grad_rng)
