"""Tests for population handling, evaluators, and the search driver."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, PredictionEngine
from repro.nas import (
    Individual,
    LearningCurveModel,
    NSGANet,
    NSGANetConfig,
    Population,
    REGIMES,
    SurrogateEvaluator,
    TrainingEvaluator,
    random_genome,
    sample_curve,
)
from repro.nas.decoder import DecoderConfig
from repro.scheduler.costmodel import EpochCostModel
from repro.utils.rng import RngStream, derive_rng
from repro.xfel import BeamIntensity


class TestIndividualPopulation:
    def test_unevaluated_objectives_raise(self, rng):
        individual = Individual(random_genome(rng), model_id=0, generation=0)
        assert not individual.evaluated
        with pytest.raises(ValueError):
            individual.objectives()

    def test_objectives_minimization_form(self, rng):
        individual = Individual(
            random_genome(rng), model_id=1, generation=0, fitness=95.0, flops=1000
        )
        assert individual.objectives() == (-95.0, 1000.0)

    def test_population_objective_array(self, rng):
        members = [
            Individual(random_genome(rng), i, 0, fitness=90.0 + i, flops=100 * (i + 1))
            for i in range(3)
        ]
        pop = Population(members)
        arr = pop.objective_array()
        assert arr.shape == (3, 2)
        assert pop.best_fitness() == 92.0

    def test_population_subset_shares_objects(self, rng):
        members = [
            Individual(random_genome(rng), i, 0, fitness=50.0, flops=1) for i in range(4)
        ]
        pop = Population(members)
        sub = pop.subset([2, 0])
        assert sub[0] is members[2] and sub[1] is members[0]

    def test_to_dict_serializable(self, rng):
        import json

        individual = Individual(
            random_genome(rng), 7, 2, fitness=88.0, flops=123, epoch_seconds=[1.0, 2.0]
        )
        json.dumps(individual.to_dict())


class TestSurrogateEvaluator:
    def _evaluator(self, engine=True, intensity=BeamIntensity.MEDIUM):
        return SurrogateEvaluator(
            intensity,
            PredictionEngine() if engine else None,
            rng_stream=RngStream(1),
            cost_model=EpochCostModel(jitter=0.0),
        )

    def test_fills_individual(self, rng):
        evaluator = self._evaluator()
        individual = Individual(random_genome(rng), 0, 0)
        evaluator.evaluate(individual)
        assert individual.evaluated
        assert 0.0 <= individual.fitness <= 100.0
        assert individual.flops > 0
        assert len(individual.epoch_seconds) == individual.result.epochs_trained

    def test_deterministic_per_model_id(self, rng):
        genome = random_genome(rng)
        results = []
        for _ in range(2):
            evaluator = self._evaluator()
            individual = Individual(genome, 5, 0)
            evaluator.evaluate(individual)
            results.append((individual.fitness, tuple(individual.epoch_seconds)))
        assert results[0] == results[1]

    def test_standalone_trains_full_budget(self, rng):
        evaluator = self._evaluator(engine=False)
        individual = Individual(random_genome(rng), 0, 0)
        evaluator.evaluate(individual)
        assert individual.result.epochs_trained == evaluator.max_epochs

    def test_flops_cached_per_genome(self, rng):
        evaluator = self._evaluator()
        genome = random_genome(rng)
        a = Individual(genome, 0, 0)
        b = Individual(genome, 1, 0)
        evaluator.evaluate(a)
        evaluator.evaluate(b)
        assert a.flops == b.flops
        assert len(evaluator._flops_cache) == 1

    def test_observer_called_per_epoch(self, rng):
        calls = []
        evaluator = SurrogateEvaluator(
            BeamIntensity.MEDIUM,
            PredictionEngine(),
            rng_stream=RngStream(1),
            observers=[lambda ind, e, f, p, ctx: calls.append(e)],
        )
        individual = Individual(random_genome(rng), 0, 0)
        evaluator.evaluate(individual)
        assert calls == list(range(1, individual.result.epochs_trained + 1))


class TestSampleCurve:
    def test_curve_in_bounds(self, rng):
        for intensity in BeamIntensity:
            curve = sample_curve(random_genome(rng), REGIMES[intensity], rng, 25)
            assert curve.shape == (25,)
            assert np.all((curve >= 0) & (curve <= 100))

    def test_capacity_raises_asymptote(self):
        from repro.nas.genome import Genome

        sparse = Genome.from_bits((0,) * 21, (4, 4, 4))
        dense = Genome.from_bits((1,) * 21, (4, 4, 4))
        regime = REGIMES[BeamIntensity.MEDIUM]
        finals_sparse = [
            sample_curve(sparse, regime, derive_rng(i, "s"), 25)[-1] for i in range(40)
        ]
        finals_dense = [
            sample_curve(dense, regime, derive_rng(i, "d"), 25)[-1] for i in range(40)
        ]
        assert np.mean(finals_dense) > np.mean(finals_sparse)

    def test_learning_curve_model_replay(self):
        curve = np.array([50.0, 60.0, 70.0])
        model = LearningCurveModel(curve)
        with pytest.raises(RuntimeError):
            model.validate()
        model.train()
        assert model.validate() == 50.0
        model.train()
        model.train()
        assert model.validate() == 70.0
        with pytest.raises(RuntimeError):
            model.train()


class TestNSGANetConfig:
    def test_paper_totals(self):
        config = NSGANetConfig()
        assert config.total_evaluations == 100

    def test_validation(self):
        with pytest.raises(Exception):
            NSGANetConfig(population_size=0)
        with pytest.raises(ValueError):
            NSGANetConfig(crossover="spicy")


class TestSearch:
    def _run(self, engine=True, seed=0, **config_kwargs):
        config = NSGANetConfig(
            population_size=4,
            offspring_per_generation=4,
            generations=3,
            max_epochs=10,
            **config_kwargs,
        )
        evaluator = SurrogateEvaluator(
            BeamIntensity.MEDIUM,
            PredictionEngine(EngineConfig(e_pred=10)) if engine else None,
            max_epochs=10,
            rng_stream=RngStream(seed),
            cost_model=EpochCostModel(jitter=0.0),
        )
        return NSGANet(config, evaluator, rng_stream=RngStream(seed)).run()

    def test_archive_size_matches_config(self):
        result = self._run()
        assert len(result.archive) == 4 + 2 * 4
        assert len(result.population) == 4

    def test_model_ids_unique_and_ordered(self):
        result = self._run()
        ids = [m.model_id for m in result.archive]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_generations_recorded(self):
        result = self._run()
        assert [g.generation for g in result.generations] == [0, 1, 2]
        assert all(g.n_evaluated == 4 for g in result.generations)

    def test_epoch_accounting(self):
        result = self._run()
        budget = 10 * len(result.archive)
        assert result.total_epochs_trained + result.total_epochs_saved == budget
        assert result.total_epochs_saved >= 0

    def test_standalone_saves_nothing(self):
        result = self._run(engine=False)
        assert result.total_epochs_saved == 0

    def test_deterministic_given_seed(self):
        r1 = self._run(seed=3)
        r2 = self._run(seed=3)
        assert [m.fitness for m in r1.archive] == [m.fitness for m in r2.archive]
        assert [m.genome.key() for m in r1.archive] == [
            m.genome.key() for m in r2.archive
        ]

    def test_different_seeds_differ(self):
        r1 = self._run(seed=3)
        r2 = self._run(seed=4)
        assert [m.genome.key() for m in r1.archive] != [
            m.genome.key() for m in r2.archive
        ]

    def test_pareto_individuals_non_dominated(self):
        result = self._run()
        pareto = result.pareto_individuals()
        assert pareto
        for p in pareto:
            for other in result.archive:
                dominated = (
                    other.fitness >= p.fitness
                    and other.flops <= p.flops
                    and (other.fitness > p.fitness or other.flops < p.flops)
                )
                assert not dominated

    def test_callbacks_invoked(self):
        seen_individuals, seen_generations = [], []
        config = NSGANetConfig(
            population_size=3, offspring_per_generation=3, generations=2, max_epochs=5
        )
        evaluator = SurrogateEvaluator(
            BeamIntensity.HIGH,
            PredictionEngine(EngineConfig(e_pred=5)),
            max_epochs=5,
            rng_stream=RngStream(0),
        )
        NSGANet(
            config,
            evaluator,
            rng_stream=RngStream(0),
            on_individual=seen_individuals.append,
            on_generation=seen_generations.append,
        ).run()
        assert len(seen_individuals) == 6
        assert len(seen_generations) == 2


class ShuffleStream:
    """Adversarial stream: evaluates eagerly, settles in random order.

    Steady mode must commit in logical-clock order no matter how the
    backend reorders completions; this stream is the worst case.
    """

    def __init__(self, evaluator, seed):
        self._evaluator = evaluator
        self._rng = np.random.default_rng(seed)
        self._in_flight = []
        self.commits = []

    def submit(self, individual):
        self._evaluator.evaluate(individual)
        self._in_flight.append(individual)

    def settled(self):
        if not self._in_flight:
            raise RuntimeError("no evaluations in flight")
        pick = int(self._rng.integers(len(self._in_flight)))
        return self._in_flight.pop(pick)

    def on_commit(self, individual):
        self.commits.append(individual.model_id)

    def finish(self):
        pass


class TestSteadySearch:
    def _search(self, seed=0, stream=None, **config_kwargs):
        config_kwargs.setdefault("evolution", "steady")
        if config_kwargs["evolution"] == "steady":
            config_kwargs.setdefault("steady_lag", 3)
        config = NSGANetConfig(
            population_size=4,
            offspring_per_generation=4,
            generations=3,
            max_epochs=10,
            **config_kwargs,
        )
        evaluator = SurrogateEvaluator(
            BeamIntensity.MEDIUM,
            PredictionEngine(EngineConfig(e_pred=10)),
            max_epochs=10,
            rng_stream=RngStream(seed),
            cost_model=EpochCostModel(jitter=0.0),
        )
        return NSGANet(
            config,
            evaluator,
            rng_stream=RngStream(seed),
            stream=stream(evaluator) if stream else None,
        )

    @staticmethod
    def _key(result):
        return [
            (m.model_id, m.logical_tick, m.genome.key(), m.fitness, m.flops)
            for m in result.archive
        ]

    def test_archive_and_logical_ticks(self):
        result = self._search().run()
        assert len(result.archive) == 4 + 2 * 4
        assert [m.logical_tick for m in result.archive] == list(range(12))
        assert [m.model_id for m in result.archive] == list(range(12))
        assert len(result.population) == 4

    def test_deterministic_given_seed(self):
        assert self._key(self._search(seed=3).run()) == self._key(
            self._search(seed=3).run()
        )

    def test_settle_order_does_not_matter(self):
        baseline = self._key(self._search().run())
        for shuffle_seed in range(4):
            search = self._search(
                stream=lambda ev, s=shuffle_seed: ShuffleStream(ev, s)
            )
            assert self._key(search.run()) == baseline

    def test_commits_fire_in_tick_order(self):
        search = self._search(stream=lambda ev: ShuffleStream(ev, 9))
        search.run()
        assert search.stream.commits == list(range(12))

    def test_lag_changes_trajectory(self):
        one = self._key(self._search(steady_lag=1).run())
        four = self._key(self._search(steady_lag=4).run())
        assert [k[2] for k in one] != [k[2] for k in four]

    def test_pseudo_generation_stats(self):
        result = self._search().run()
        assert [g.generation for g in result.generations] == [0, 1, 2]
        assert all(g.n_evaluated == 4 for g in result.generations)

    def test_offspring_generation_numbers(self):
        result = self._search().run()
        assert [m.generation for m in result.archive] == [0] * 4 + [1] * 4 + [2] * 4

    def test_thread_stream_matches_inline(self):
        from repro.scheduler.pool import FifoWorkerPool

        baseline = self._key(self._search().run())
        for n_workers in (1, 2, 4):
            search = self._search(
                stream=lambda ev, n=n_workers: FifoWorkerPool(ev, n_workers=n)
            )
            assert self._key(search.run()) == baseline
            report = search.stream.reports[-1]
            assert report.n_jobs == 12
            assert len(search.stream.reports) == 1

    def test_resume_matches_uninterrupted(self):
        from repro.nas.search import SearchState
        from repro.nas.population import Population

        full = self._search().run()
        # resume from a chunk-aligned prefix (2 pseudo-generations = 8 ticks)
        prefix = self._search()  # fresh evaluator, same seed
        state = SearchState(
            population=Population([]),
            archive=Population(list(full.archive.members[:8])),
            next_generation=2,
            next_model_id=8,
            generation_stats=list(full.generations[:2]),
        )
        resumed = prefix.run(resume=state)
        assert self._key(resumed) == self._key(full)
        assert [g.generation for g in resumed.generations] == [0, 1, 2]

    def test_resume_rejects_non_contiguous_archive(self):
        from repro.nas.search import SearchState
        from repro.nas.population import Population

        full = self._search().run()
        state = SearchState(
            population=Population([]),
            archive=Population(list(full.archive.members[:8])),
            next_generation=2,
            next_model_id=9,  # gap: archive has 8 members
            generation_stats=[],
        )
        with pytest.raises(ValueError, match="contiguous ticks"):
            self._search().run(resume=state)

    def test_barrier_resume_at_final_generation_is_noop(self):
        # satellite: resume with next_generation == config.generations
        from repro.nas.search import SearchState

        full = self._search(evolution="barrier").run()
        calls = []

        class CountingEvaluator:
            max_epochs = 10

            def evaluate(self, individual):
                calls.append(individual.model_id)
                raise AssertionError("no-op resume must not evaluate")

        config = NSGANetConfig(
            population_size=4,
            offspring_per_generation=4,
            generations=3,
            max_epochs=10,
        )
        state = SearchState(
            population=full.population,
            archive=full.archive,
            next_generation=3,
            next_model_id=12,
            generation_stats=list(full.generations),
        )
        result = NSGANet(config, CountingEvaluator(), rng_stream=RngStream(0)).run(
            resume=state
        )
        assert calls == []
        assert len(result.archive) == 12
        assert [g.generation for g in result.generations] == [0, 1, 2]


class TestSteadyInsert:
    def test_grows_until_full(self, rng):
        from repro.nas.search import steady_insert

        members = []
        for i in range(3):
            ind = Individual(random_genome(rng), i, 0, fitness=50.0 + i, flops=100)
            members = steady_insert(members, ind, population_size=3)
        assert [m.model_id for m in members] == [0, 1, 2]

    def test_evicts_exactly_one_preserving_order(self, rng):
        from repro.nas.nsga2 import steady_eviction
        from repro.nas.search import steady_insert

        members = [
            Individual(random_genome(rng), i, 0, fitness=50.0 + i, flops=100 * (i + 1))
            for i in range(4)
        ]
        incoming = Individual(random_genome(rng), 9, 1, fitness=70.0, flops=150)
        combined = members + [incoming]
        objectives = np.array([m.objectives() for m in combined])
        victim = steady_eviction(objectives)
        survivors = steady_insert(list(members), incoming, population_size=4)
        assert len(survivors) == 4
        assert [m.model_id for m in survivors] == [
            m.model_id for i, m in enumerate(combined) if i != victim
        ]


class TestTrainingEvaluatorIntegration:
    def test_real_mode_small(self, tiny_dataset):
        engine = PredictionEngine(EngineConfig(e_pred=4, n_predictions=2, tolerance=2.0))
        evaluator = TrainingEvaluator(
            tiny_dataset,
            engine,
            max_epochs=4,
            decoder_config=DecoderConfig(tiny_dataset.input_shape, 2, (2, 3, 4)),
            rng_stream=RngStream(0),
        )
        individual = Individual(random_genome(np.random.default_rng(0)), 0, 0)
        evaluator.evaluate(individual)
        assert individual.evaluated
        assert individual.flops > 0
        assert 0 <= individual.fitness <= 100
        assert len(individual.epoch_seconds) == individual.result.epochs_trained
        assert all(s > 0 for s in individual.epoch_seconds)
