"""Tests for the evaluation fast path: genome canonicalization, the
duplicate-architecture memoization layer, its workflow wiring
(cache-on == cache-off search outcomes, replay, resume), the compute
dtype policy, and the float64 byte-exact regression fixture."""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.lineage import DataCommons
from repro.lineage.replay import verify_run
from repro.nas import NSGANetConfig, random_genome
from repro.nas.decoder import DecoderConfig, decode_genome
from repro.nas.evalcache import (
    CacheEntry,
    EvaluationCache,
    MemoizingEvaluator,
    MemoizingStream,
)
from repro.nas.genome import Genome, PhaseGenome
from repro.nas.population import Individual
from repro.nn.dtype import resolve_dtype
from repro.nn.flops import network_flops
from repro.utils.validation import ValidationError
from repro.workflow import WorkflowConfig, resume_workflow, run_workflow
from repro.workflow.orchestrator import A4NNOrchestrator
from repro.xfel import BeamIntensity, DatasetConfig
from repro.xfel.dataset import load_or_generate

FIXTURE = Path(__file__).parent / "fixtures" / "prepr_float64_real.json"


def iso_phases():
    """Two bit strings encoding the same 3-node DAG (edge under relabeling)."""
    # layout for n=3: (0,1), (0,2), (1,2), skip
    a = PhaseGenome(3, (1, 0, 0, 0))  # single edge 0 -> 1
    b = PhaseGenome(3, (0, 0, 1, 0))  # single edge 1 -> 2
    return a, b


class TestCanonicalization:
    def test_isomorphic_phases_share_canonical_form(self):
        a, b = iso_phases()
        assert a.bits != b.bits
        assert a.canonical().bits == b.canonical().bits

    def test_isomorphic_genomes_share_canonical_key(self):
        a, b = iso_phases()
        ga = Genome((a, a, b))
        gb = Genome((b, b, a))
        assert ga.key() != gb.key()
        assert ga.canonical_key() == gb.canonical_key()

    def test_canonical_preserves_connection_count_and_skip(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            g = random_genome(rng, n_phases=3, nodes_per_phase=4, density=0.5)
            c = g.canonical()
            assert c.n_connections == g.n_connections
            assert c.n_skips == g.n_skips
            assert c.nodes_per_phase == g.nodes_per_phase

    def test_canonical_is_idempotent(self):
        rng = np.random.default_rng(13)
        for _ in range(20):
            g = random_genome(rng, n_phases=3, nodes_per_phase=4, density=0.5)
            c = g.canonical()
            assert c.canonical() is c
            assert c.canonical_key() == g.canonical_key()

    def test_non_isomorphic_phases_stay_distinct(self):
        chain = PhaseGenome(3, (1, 0, 1, 0))  # 0 -> 1 -> 2
        single = PhaseGenome(3, (1, 0, 0, 0))  # 0 -> 1 only
        assert chain.canonical().bits != single.canonical().bits

    def test_skip_bit_survives_and_separates_classes(self):
        a, _ = iso_phases()
        skipped = PhaseGenome(3, a.bits[:-1] + (1,))
        assert skipped.canonical().skip
        assert skipped.canonical().bits != a.canonical().bits

    def test_oversized_phase_is_its_own_canonical_form(self):
        # beyond the brute-force bound canonicalization degrades to identity
        n = 9
        bits = tuple([1] * (n * (n - 1) // 2)) + (0,)
        phase = PhaseGenome(n, bits)
        assert phase.canonical() is phase

    def test_isomorphic_genomes_decode_to_equal_flops(self):
        a, b = iso_phases()
        ga, gb = Genome((a, a, b)), Genome((b, b, a))
        config = DecoderConfig(input_shape=(1, 16, 16), n_classes=2)
        na = decode_genome(ga, config, rng=np.random.default_rng(0))
        nb = decode_genome(gb, config, rng=np.random.default_rng(0))
        assert network_flops(na) == network_flops(nb)

    def test_canonical_decode_materializes_identical_networks(self):
        a, b = iso_phases()
        ga, gb = Genome((a, a, b)), Genome((b, b, a))
        config = DecoderConfig(input_shape=(1, 16, 16), n_classes=2)
        na = decode_genome(ga, config, rng=np.random.default_rng(3), canonical=True)
        nb = decode_genome(gb, config, rng=np.random.default_rng(3), canonical=True)
        for (name_a, pa), (name_b, pb) in zip(na.parameters(), nb.parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.value, pb.value)


class TestEvaluationCache:
    def test_lookup_counts_hits_and_misses(self):
        cache = EvaluationCache()
        entry = CacheEntry(0, 80.0, 100, [], None, [])
        assert cache.lookup(("k",)) is None
        cache.put(("k",), entry)
        assert cache.lookup(("k",)) is entry
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_peek_does_not_count(self):
        cache = EvaluationCache()
        assert cache.peek(("k",)) is None
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_record_hit_counts_only_hits(self):
        cache = EvaluationCache()
        assert cache.record_hit(("k",)) is None
        cache.put(("k",), CacheEntry(0, 80.0, 100, [], None, []))
        assert cache.record_hit(("k",)) is not None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 0

    def test_first_writer_wins(self):
        cache = EvaluationCache()
        first = CacheEntry(0, 80.0, 100, [], None, [])
        cache.put(("k",), first)
        cache.put(("k",), CacheEntry(1, 90.0, 200, [], None, []))
        assert cache.peek(("k",)) is first
        assert len(cache) == 1


class FakeBase:
    """Innermost-backend stand-in: memo_key + observers."""

    def __init__(self, keyed=True):
        self.observers = []
        self.keyed = keyed

    def memo_key(self, individual):
        if not self.keyed:
            return None
        return ("fake", individual.genome.canonical_key())


class FakeChain:
    """Evaluation-chain stand-in that fires per-epoch observers."""

    def __init__(self, base, quarantine_ids=()):
        self.base = base
        self.calls = []
        self.max_epochs = 2
        self.quarantine_ids = set(quarantine_ids)

    def evaluate(self, individual):
        self.calls.append(individual.model_id)
        if individual.model_id in self.quarantine_ids:
            individual.quarantined = True
            individual.fitness = 0.0
            individual.flops = 1
            individual.result = {"quarantined": True}
            return individual
        individual.fitness = 80.0
        individual.flops = 123
        individual.result = {"history": [51.0, 52.0]}
        individual.epoch_seconds = [0.1, 0.2]
        for epoch in (1, 2):
            for observer in self.base.observers:
                observer(individual, epoch, 50.0 + epoch, None, {})
        return individual


def make_individual(model_id, phase=None):
    phase = phase or iso_phases()[0]
    return Individual(genome=Genome((phase,)), model_id=model_id, generation=0)


def make_memoizer(keyed=True, quarantine_ids=()):
    base = FakeBase(keyed=keyed)
    chain = FakeChain(base, quarantine_ids=quarantine_ids)
    return MemoizingEvaluator(chain, base), chain


class TestMemoizingEvaluator:
    def test_miss_then_isomorphic_hit(self):
        memo, chain = make_memoizer()
        a, b = iso_phases()
        first = memo.evaluate(make_individual(0, a))
        second = memo.evaluate(make_individual(1, b))  # isomorphic duplicate
        assert chain.calls == [0]
        assert not first.cache_hit
        assert second.cache_hit and second.cache_source == 0
        assert second.fitness == first.fitness
        assert second.flops == first.flops
        assert second.epoch_seconds == first.epoch_seconds
        assert second.result == first.result and second.result is not first.result
        assert memo.cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_hit_replays_observers_with_cache_context(self):
        memo, _ = make_memoizer()
        seen = []
        memo.base.observers.insert(
            0, lambda ind, e, f, p, ctx: seen.append((ind.model_id, e, f, dict(ctx)))
        )
        memo.evaluate(make_individual(0))
        memo.evaluate(make_individual(1))
        live = [s for s in seen if s[0] == 0]
        replayed = [s for s in seen if s[0] == 1]
        assert [(e, f) for _, e, f, _ in live] == [(e, f) for _, e, f, _ in replayed]
        assert all(ctx.get("cache_hit") for _, _, _, ctx in replayed)
        assert all(ctx["source_model_id"] == 0 for _, _, _, ctx in replayed)
        assert not any(ctx.get("cache_hit") for _, _, _, ctx in live)

    def test_quarantined_outcomes_never_cached(self):
        memo, chain = make_memoizer(quarantine_ids={0})
        memo.evaluate(make_individual(0))
        assert len(memo.cache) == 0
        follower = memo.evaluate(make_individual(1))
        assert chain.calls == [0, 1]  # duplicate re-evaluated for real
        assert not follower.cache_hit and not follower.quarantined

    def test_faulted_and_retried_outcomes_never_cached(self):
        memo, _ = make_memoizer()
        faulted = make_individual(0)
        faulted.fault_events = [{"kind": "nan"}]
        memo.evaluate(faulted)
        retried = make_individual(1)
        retried.eval_attempt = 1
        memo.evaluate(retried)
        assert len(memo.cache) == 0

    def test_model_keying_bypasses_cache(self):
        memo, chain = make_memoizer(keyed=False)
        memo.evaluate(make_individual(0))
        second = memo.evaluate(make_individual(1))
        assert chain.calls == [0, 1]
        assert len(memo.cache) == 0
        assert not second.cache_hit

    def test_generation_dedup_is_submission_ordered(self):
        memo, chain = make_memoizer()
        a, b = iso_phases()
        other = PhaseGenome(3, (1, 0, 1, 0))
        batch = [
            make_individual(0, a),
            make_individual(1, b),  # follower of 0
            make_individual(2, other),
            make_individual(3, a),  # follower of 0
        ]
        memo.evaluate_generation(batch)
        assert chain.calls == [0, 2]  # leaders only, in submission order
        assert [i.cache_hit for i in batch] == [False, True, False, True]
        assert batch[1].cache_source == batch[3].cache_source == 0

    def test_second_wave_when_leader_uncacheable(self):
        memo, chain = make_memoizer(quarantine_ids={0})
        a, b = iso_phases()
        batch = [make_individual(0, a), make_individual(1, b)]
        memo.evaluate_generation(batch)
        assert chain.calls == [0, 1]  # follower promoted to a real evaluation
        assert batch[0].quarantined and not batch[1].quarantined
        assert not batch[1].cache_hit
        assert batch[1].fitness == 80.0

    def test_prime_seeds_hits_with_original_attribution(self):
        memo, chain = make_memoizer()
        restored = make_individual(4)
        restored.fitness, restored.flops = 77.0, 99
        restored.result = {"history": [77.0]}
        restored.epoch_seconds = [0.3]
        assert memo.prime(restored, [(1, 77.0, None)])
        hit = memo.evaluate(make_individual(5))
        assert chain.calls == []
        assert hit.cache_hit and hit.cache_source == 4

    def test_prime_rejects_quarantined_and_unevaluated(self):
        memo, _ = make_memoizer()
        empty = make_individual(0)
        assert not memo.prime(empty)
        bad = make_individual(1)
        bad.fitness, bad.flops, bad.result = 1.0, 1, {}
        bad.quarantined = True
        assert not memo.prime(bad)
        assert len(memo.cache) == 0


class FakeInnerStream:
    """Streaming-seam stand-in: evaluates eagerly at submit, settles FIFO."""

    def __init__(self, chain):
        self.chain = chain
        self.pending = []
        self.committed = []
        self.finish_calls = 0

    def submit(self, individual):
        self.pending.append(self.chain.evaluate(individual))

    def settled(self):
        return self.pending.pop(0)

    def on_commit(self, individual):
        self.committed.append(individual.model_id)

    def finish(self):
        self.finish_calls += 1
        return "inner-report"


def make_stream(keyed=True, quarantine_ids=()):
    memo, chain = make_memoizer(keyed=keyed, quarantine_ids=quarantine_ids)
    inner = FakeInnerStream(chain)
    return MemoizingStream(memo, inner), memo, chain, inner


class TestMemoizingStream:
    def test_hit_decided_at_submit_skips_inner(self):
        stream, memo, chain, inner = make_stream()
        a, b = iso_phases()
        leader = make_individual(0, a)
        stream.submit(leader)
        stream.on_commit(stream.settled())
        stream.submit(make_individual(1, b))  # isomorphic, past the window
        assert chain.calls == [0]  # hit never reached the pool
        hit = stream.settled()
        assert hit.cache_hit and hit.cache_source == 0
        assert hit.fitness == leader.fitness
        assert memo.cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_ready_hits_settle_before_inner_results(self):
        stream, _, _, inner = make_stream()
        a, b = iso_phases()
        stream.submit(make_individual(0, a))
        stream.on_commit(stream.settled())
        stream.submit(make_individual(1, PhaseGenome(3, (1, 0, 1, 0))))  # miss
        stream.submit(make_individual(2, b))  # hit -> queued in _ready
        assert stream.settled().model_id == 2  # hit jumps the queue
        assert stream.settled().model_id == 1
        assert not inner.pending

    def test_duplicate_inside_lag_window_reevaluates(self):
        # both submitted before either commits: the follower cannot see
        # the leader's entry yet and must run for real
        stream, memo, chain, _ = make_stream()
        a, b = iso_phases()
        stream.submit(make_individual(0, a))
        stream.submit(make_individual(1, b))
        assert chain.calls == [0, 1]
        stream.on_commit(stream.settled())
        stream.on_commit(stream.settled())
        assert len(memo.cache) == 1  # first writer wins at commit
        stream.submit(make_individual(2, a))  # now past the window: a hit
        assert chain.calls == [0, 1]
        assert stream.settled().cache_source == 0

    def test_priming_waits_for_commit(self):
        stream, memo, _, inner = make_stream()
        stream.submit(make_individual(0))
        settled = stream.settled()
        assert len(memo.cache) == 0  # settle alone must not publish
        stream.on_commit(settled)
        assert len(memo.cache) == 1
        assert inner.committed == [0]

    def test_hit_commit_does_not_overwrite_entry(self):
        stream, memo, _, _ = make_stream()
        a, b = iso_phases()
        stream.submit(make_individual(0, a))
        stream.on_commit(stream.settled())
        stream.submit(make_individual(1, b))
        stream.on_commit(stream.settled())
        assert len(memo.cache) == 1
        assert memo.cache.stats()["hits"] == 1

    def test_quarantined_outcome_not_primed(self):
        stream, memo, chain, inner = make_stream(quarantine_ids={0})
        stream.submit(make_individual(0))
        stream.on_commit(stream.settled())
        assert len(memo.cache) == 0
        assert inner.committed == [0]
        stream.submit(make_individual(1))  # no entry -> real evaluation
        assert chain.calls == [0, 1]

    def test_unkeyed_individuals_bypass_cache(self):
        stream, memo, chain, _ = make_stream(keyed=False)
        stream.submit(make_individual(0))
        stream.on_commit(stream.settled())
        stream.submit(make_individual(1))
        stream.on_commit(stream.settled())
        assert chain.calls == [0, 1]
        assert len(memo.cache) == 0

    def test_hit_replays_observers_with_cache_context(self):
        stream, memo, _, _ = make_stream()
        seen = []
        memo.base.observers.insert(
            0, lambda ind, e, f, p, ctx: seen.append((ind.model_id, e, dict(ctx)))
        )
        a, b = iso_phases()
        stream.submit(make_individual(0, a))
        stream.on_commit(stream.settled())
        stream.submit(make_individual(1, b))
        stream.settled()
        replayed = [s for s in seen if s[0] == 1]
        assert [e for _, e, _ in replayed] == [1, 2]
        assert all(ctx["cache_hit"] and ctx["source_model_id"] == 0 for _, _, ctx in replayed)

    def test_finish_delegates_to_inner(self):
        stream, _, _, inner = make_stream()
        assert stream.finish() == "inner-report"
        assert inner.finish_calls == 1


def cached_config(seed=9, mode="surrogate", generations=3):
    """Small search on a 2-node-per-phase space so duplicates occur."""
    nas = NSGANetConfig(
        population_size=6,
        offspring_per_generation=6,
        generations=generations,
        max_epochs=12,
        nodes_per_phase=2,
    )
    return WorkflowConfig(
        nas=nas,
        engine=EngineConfig(e_pred=12, tolerance=1.0),
        dataset=DatasetConfig(
            intensity=BeamIntensity.MEDIUM, images_per_class=20, image_size=16
        ),
        mode=mode,
        n_gpus=(1,),
        seed=seed,
    )


def archive_signature(result):
    return [
        (m.model_id, m.generation, m.genome.key(), m.fitness, m.flops)
        for m in result.search.archive
    ]


def pareto_signature(result):
    return [(m.model_id, m.fitness, m.flops) for m in result.search.pareto_individuals()]


class TestWorkflowCacheEquivalence:
    def test_cache_on_and_off_produce_identical_searches(self):
        config = cached_config()
        cached = A4NNOrchestrator(config)
        cached_result = cached.run()
        assert cached.memoizer is not None
        stats = cached.memoizer.cache.stats()
        assert stats["hits"] >= 1  # the small genome space guarantees duplicates
        uncached_result = A4NNOrchestrator(
            dataclasses.replace(config, eval_cache=False)
        ).run()
        assert archive_signature(cached_result) == archive_signature(uncached_result)
        assert pareto_signature(cached_result) == pareto_signature(uncached_result)

    def test_hits_marked_in_lineage_records(self, tmp_path):
        config = cached_config()
        commons = DataCommons(tmp_path)
        orchestrator = A4NNOrchestrator(config, commons=commons)
        result = orchestrator.run()
        records = commons.load_models(result.run_id)
        hits = [r for r in records if r.cache_hit]
        assert len(hits) == orchestrator.memoizer.cache.stats()["hits"]
        by_id = {r.model_id: r for r in records}
        for record in hits:
            source = by_id[record.cache_source]
            assert not source.cache_hit  # sources are real evaluations
            assert record.fitness == source.fitness
            assert record.flops == source.flops
            assert record.fitness_history == source.fitness_history

    def test_generation_stats_report_hits(self):
        config = cached_config()
        result = A4NNOrchestrator(config).run()
        per_generation = [g.n_cache_hits for g in result.search.generations]
        assert sum(per_generation) >= 1
        assert all(h >= 0 for h in per_generation)


class TestReplayAndResume:
    def test_cached_run_replays_exactly(self, tmp_path):
        config = cached_config()
        result = run_workflow(config, commons_path=tmp_path)
        report = verify_run(DataCommons(tmp_path), result.run_id)
        assert report.matches, report.summary()
        assert report.n_models == len(result.search.archive)

    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        config = cached_config(seed=17)
        full = run_workflow(config, commons_path=tmp_path)
        commons = DataCommons(tmp_path)
        # drop every record past generation 0 to simulate an interruption
        for record in commons.load_models(full.run_id):
            if record.generation >= 1:
                (
                    commons.root
                    / "runs"
                    / full.run_id
                    / "models"
                    / f"model_{record.model_id:05d}.json"
                ).unlink()
        resumed = resume_workflow(commons, full.run_id)
        assert archive_signature(resumed) == archive_signature(full)
        # cache-hit attribution must survive the restart, including hits
        # whose source was evaluated before the interruption
        full_flags = {
            m.model_id: (m.cache_hit, m.cache_source) for m in full.search.archive
        }
        resumed_flags = {
            m.model_id: (m.cache_hit, m.cache_source) for m in resumed.search.archive
        }
        assert resumed_flags == full_flags


class TestDtypePolicy:
    def test_decoded_network_and_dataset_follow_config_dtype(self):
        config = cached_config()
        assert config.dtype == "float32"
        dataset = load_or_generate(config.dataset).astype(config.dtype)
        assert dataset.x_train.dtype == np.float32
        genome = random_genome(np.random.default_rng(0), nodes_per_phase=2)
        network = decode_genome(
            genome,
            DecoderConfig(
                input_shape=dataset.input_shape,
                n_classes=dataset.n_classes,
                dtype=resolve_dtype(config.dtype),
            ),
            rng=np.random.default_rng(1),
        )
        for _, param in network.parameters():
            assert param.value.dtype == np.float32
        out = network.forward(dataset.x_train[:4], training=False)
        assert out.dtype == np.float32

    def test_cache_requires_genome_keying(self):
        with pytest.raises(ValidationError, match="eval_cache"):
            WorkflowConfig(rng_keying="model", eval_cache=True)

    def test_legacy_documents_default_to_pre_fastpath_semantics(self):
        payload = cached_config().to_dict()
        for key in ("dtype", "rng_keying", "eval_cache"):
            payload.pop(key, None)
        payload["dataset"].pop("dtype", None)
        legacy = WorkflowConfig.from_dict(payload)
        assert legacy.dtype == "float64"
        assert legacy.rng_keying == "model"
        assert legacy.eval_cache is False

    def test_memo_keys_separate_dtypes(self):
        from repro.nas.evaluation import TrainingEvaluator

        config = cached_config()
        dataset = load_or_generate(config.dataset)
        keys = {}
        for label in ("float32", "float64"):
            evaluator = TrainingEvaluator(
                dataset.astype(label),
                None,
                max_epochs=4,
                rng_keying="genome",
                dtype=resolve_dtype(label),
                dataset_key=config.dataset.cache_key(),
            )
            keys[label] = evaluator.memo_key(make_individual(0))
        assert keys["float32"] != keys["float64"]


class TestFloat64Regression:
    """The legacy float64/model-keyed path reproduces the pre-fast-path
    run captured in fixtures/prepr_float64_real.json, byte for byte."""

    def test_fixture_reproduced_exactly(self):
        fixture = json.loads(FIXTURE.read_text())
        fc = fixture["config"]
        config = WorkflowConfig(
            nas=NSGANetConfig(
                population_size=fc["nas"]["population_size"],
                offspring_per_generation=fc["nas"]["offspring_per_generation"],
                generations=fc["nas"]["generations"],
                max_epochs=fc["nas"]["max_epochs"],
            ),
            engine=EngineConfig(
                e_pred=fc["engine"]["e_pred"], tolerance=fc["engine"]["tolerance"]
            ),
            dataset=DatasetConfig(
                intensity=BeamIntensity.from_label(fc["dataset"]["intensity"]),
                images_per_class=fc["dataset"]["images_per_class"],
                image_size=fc["dataset"]["image_size"],
            ),
            mode=fc["mode"],
            seed=fc["seed"],
            n_gpus=(1,),
            dtype="float64",
            rng_keying="model",
            eval_cache=False,
        )
        result = run_workflow(config)
        records = {r.model_id: r for r in result.tracker.all_records()}
        assert len(records) == len(fixture["models"])
        for expected in fixture["models"]:
            record = records[expected["model_id"]]
            assert record.generation == expected["generation"]
            assert record.genome == expected["genome"]
            assert record.flops == expected["flops"]
            assert record.fitness == expected["fitness"]
            assert record.measured_fitness == expected["measured_fitness"]
            assert record.fitness_history == expected["fitness_history"]
            assert record.epochs_trained == expected["epochs_trained"]
            assert record.terminated_early == expected["terminated_early"]
