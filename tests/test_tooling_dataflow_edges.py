"""Dataflow value-tracing edge cases: starred unpacks, views, **kwargs."""

import ast
import textwrap

from repro.tooling.context import ModuleContext, ProjectContext
from repro.tooling.dataflow import mapping_values, trace_value
from repro.tooling.graph import build_graph


def project_of(sources: dict) -> ProjectContext:
    project = ProjectContext()
    for path, text in sources.items():
        project.add(ModuleContext.parse(textwrap.dedent(text), path))
    return project


def scope_and_symbols(source: str, func_name: str = "f"):
    graph = build_graph(project_of({"repro/t.py": source}))
    return graph.modules["repro.t"], graph.functions[f"repro.t.{func_name}"]


def returned(info) -> ast.AST:
    return next(n for n in ast.walk(info.node) if isinstance(n, ast.Return)).value


# -- starred / tuple unpacking -------------------------------------------------


def test_starred_unpack_binds_prefix_and_suffix_names():
    symbols, info = scope_and_symbols("""
        import threading
        def f():
            head, *mid, tail = threading.Lock(), 1, 2, lambda: 3
            return head, tail
    """)
    head_expr, tail_expr = returned(info).elts
    head = trace_value(symbols, info, head_expr)
    assert head.kind == "call"
    assert head.detail == "threading.Lock"
    assert trace_value(symbols, info, tail_expr).kind == "lambda"


def test_starred_name_binds_to_the_middle_as_a_sequence():
    symbols, info = scope_and_symbols("""
        def f():
            first, *rest = 1, 2, 3
            return rest
    """)
    assert trace_value(symbols, info, returned(info)).kind == "sequence"


def test_trailing_star_with_empty_middle_still_binds():
    symbols, info = scope_and_symbols("""
        def f():
            a, b, *rest = "x", "y"
            return b, rest
    """)
    b_expr, rest_expr = returned(info).elts
    assert trace_value(symbols, info, b_expr).kind == "constant"
    assert trace_value(symbols, info, rest_expr).kind == "sequence"


def test_shape_mismatched_unpack_binds_nothing():
    # a, b = x, y, z raises at runtime; tracing must stay "unknown"
    # rather than guess a positional pairing
    symbols, info = scope_and_symbols("""
        def f():
            a, b = 1, 2, 3
            return a
    """)
    assert trace_value(symbols, info, returned(info)).kind == "unknown"


def test_unpack_through_out_chain_keeps_call_origin():
    # the shape an arena-style helper produces: the buffer pair is
    # unpacked, rebound, and one leg flows onward through out= usage
    symbols, info = scope_and_symbols("""
        import numpy as np
        def f():
            xb, yb = np.empty(4), np.empty(4)
            dst = xb
            np.add(dst, 1.0, out=dst)
            return dst
    """)
    origin = trace_value(symbols, info, returned(info))
    assert origin.kind == "call"
    assert origin.detail == "numpy.empty"


# -- __getitem__ views ---------------------------------------------------------


def test_subscript_view_carries_the_base_call_chain():
    symbols, info = scope_and_symbols("""
        import numpy as np
        def f():
            table = np.zeros((8, 8))
            return table[2:4]
    """)
    origin = trace_value(symbols, info, returned(info))
    assert origin.kind == "view"
    assert origin.detail == "numpy.zeros"


def test_subscript_of_unknown_base_is_a_bare_view():
    symbols, info = scope_and_symbols("""
        def f(arr):
            return arr[0]
    """)
    origin = trace_value(symbols, info, returned(info))
    assert origin.kind == "view"
    assert origin.detail == ""


def test_nested_subscript_traces_through_both_levels():
    symbols, info = scope_and_symbols("""
        def f():
            grid = [[1, 2], [3, 4]]
            return grid[0][1]
    """)
    origin = trace_value(symbols, info, returned(info))
    assert origin.kind == "view"
    # the inner view's base is the sequence literal
    assert origin.detail == "sequence"


# -- **kwargs into constructors ------------------------------------------------


def test_kwargs_dict_into_layer_constructor_traces_each_value():
    symbols, info = scope_and_symbols("""
        def f():
            kwargs = {"units": 64, "activation": lambda x: x}
            return kwargs
    """)
    values = dict(mapping_values(symbols, info, returned(info)))
    assert set(values) == {"units", "activation"}
    assert trace_value(symbols, info, values["units"]).kind == "constant"
    assert trace_value(symbols, info, values["activation"]).kind == "lambda"


def test_kwargs_via_dict_call_resolves_module_level_factories():
    symbols, info = scope_and_symbols("""
        import numpy as np
        SEEDER = np.random.default_rng
        def f():
            kw = dict(rng=SEEDER(), units=3)
            return kw
    """)
    values = dict(mapping_values(symbols, info, returned(info)))
    origin = trace_value(symbols, info, values["rng"])
    assert origin.kind == "call"
    # the chain resolves to the module-level binding that holds the factory
    assert origin.detail == "repro.t.SEEDER"


def test_double_splat_entry_in_dict_literal_is_kept_anonymous():
    symbols, info = scope_and_symbols("""
        def f(extra):
            kw = {"units": 1, **extra}
            return kw
    """)
    pairs = mapping_values(symbols, info, returned(info))
    names = [name for name, _ in pairs]
    assert "units" in names
    assert None in names  # the **extra expansion has no static key
